#include "core/stitch_codegen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <unordered_map>

#include "analysis/cuda_static.h"
#include "analysis/kernel_verifier.h"
#include "analysis/sanitizer.h"
#include "analysis/shape_symbolic.h"
#include "core/cuda_emitter.h"
#include "support/fault_injection.h"
#include "support/logging.h"
#include "support/strings.h"

namespace astitch {

CompiledCluster
compileStitchOp(const Graph &graph, const Cluster &cluster,
                const GpuSpec &spec, const AStitchOptions &options,
                StitchDiagnostics *diagnostics)
{
    panicIf(cluster.nodes.empty(), "empty cluster in stitch codegen");
    faultPoint("codegen");

    // ---- Steps 1-2: dominants, groups, schedules. ----
    DominantAnalysis analysis =
        analyzeDominants(graph, cluster, options.dominant_merging);
    std::vector<GroupSchedule> schedules = computeGroupSchedules(
        graph, cluster, analysis, spec, options.adaptive_thread_mapping,
        options.tuning.mappings);

    // ---- Step 3: stitching schemes + memory planning. ----
    SchemeMap schemes =
        finalizeSchemes(graph, cluster, analysis, schedules);
    if (!options.tuning.schemes.empty()) {
        // Impose the tuner's scheme decisions on boundaries the
        // locality pass already classified. Correctness guard: a
        // producer finalized by atomics or task splitting publishes
        // partial values until the device-wide barrier, so it can never
        // be relaxed below Global whatever the tuner asked for.
        const auto producing_group = [&](NodeId x) -> int {
            for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
                const DominantGroup &group = analysis.groups[g];
                if (group.dominant == x ||
                    std::binary_search(group.sub_dominants.begin(),
                                       group.sub_dominants.end(), x)) {
                    return static_cast<int>(g);
                }
            }
            return -1;
        };
        for (const auto &[node, scheme] : options.tuning.schemes) {
            const auto it = schemes.find(node);
            if (it == schemes.end())
                continue;
            if (scheme != StitchScheme::Global) {
                const int g = producing_group(node);
                if (g >= 0 &&
                    (schedules[g].mapping.uses_atomics ||
                     schedules[g].mapping.split_factor > 1)) {
                    continue;
                }
            }
            it->second = scheme;
        }
    }
    MemoryPlan memory =
        planMemory(graph, cluster, analysis, schedules, std::move(schemes),
                   spec, options.smem_budget_per_block);

    // ---- Launch configuration (assume-relax-apply). ----
    std::int64_t logical_grid = 1;
    int block = 1;
    for (const GroupSchedule &sched : schedules) {
        logical_grid = std::max(logical_grid, sched.mapping.launch.grid);
        block = std::max(block, sched.mapping.launch.block);
    }

    // Count barrier requirements before capping the grid.
    const std::set<NodeId> output_set(cluster.outputs.begin(),
                                      cluster.outputs.end());
    int num_global = 0;
    int num_regional = 0;
    for (const auto &[x, scheme] : memory.schemes) {
        bool has_internal_user = false;
        for (NodeId u : graph.users(x)) {
            if (cluster.contains(u)) {
                has_internal_user = true;
                break;
            }
        }
        if (!has_internal_user)
            continue; // pure outputs need no in-kernel communication
        if (scheme == StitchScheme::Global)
            ++num_global;
        else if (scheme == StitchScheme::Regional)
            ++num_regional;
    }

    const LaunchConfig launch =
        configureLaunch(spec, logical_grid, block, memory.smem_per_block,
                        /*needs_global_barrier=*/num_global > 0);

    // ---- Emit the kernel plan. ----
    KernelPlan plan;
    plan.name = strCat("stitch_", graph.name(), "_", cluster.nodes.front(),
                       "_", cluster.nodes.back());
    plan.launch = launch.launch;
    plan.regs_per_thread = launch.regs_per_thread;
    plan.smem_per_block = memory.smem_per_block;
    plan.num_global_barriers = num_global;
    plan.shared_slots = memory.arena;

    // Partition of a group's mapping, recorded per op so the sanitizer
    // can re-derive block locality and packed trip counts.
    auto partition_of_group = [&](int g) {
        const AdaptiveMapping &m = schedules[g].mapping;
        return OpPartition{m.launch, m.rows_per_block, m.tasks_per_block};
    };
    // Group that produces a boundary value: the first group listing it as
    // dominant or sub-dominant — the same choice finalizeSchemes() and
    // the memory planner make.
    auto boundary_group = [&](NodeId x) -> int {
        for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
            const DominantGroup &group = analysis.groups[g];
            if (group.dominant == x ||
                std::binary_search(group.sub_dominants.begin(),
                                   group.sub_dominants.end(), x)) {
                return static_cast<int>(g);
            }
        }
        return -1;
    };

    int num_reduce = 0;
    bool has_transpose = false;
    std::unordered_map<NodeId, int> remat_extra;
    for (NodeId id : cluster.nodes) {
        const Node &node = graph.node(id);
        if (isReduce(node.kind()))
            ++num_reduce;
        if (node.kind() == OpKind::Transpose ||
            node.kind() == OpKind::Gather) {
            has_transpose = true; // strided/indirect access
        }

        ScheduledOp op;
        op.node = id;
        // Without dominant merging, ops shared between groups are
        // scheduled once per group (lost operator-level reuse).
        const auto it = analysis.groups_of_node.find(id);
        const int dup =
            it == analysis.groups_of_node.end()
                ? 1
                : static_cast<int>(it->second.size());
        op.recompute_factor = static_cast<double>(std::max(1, dup));

        if (memory.rematerialized.count(id)) {
            // Recomputed once per extra consuming group; the recompute
            // re-reads ancestors of roughly the value's own footprint.
            std::set<int> consumer_groups;
            const int own = analysis.groups_of_node.at(id).front();
            for (NodeId u : graph.users(id)) {
                if (!cluster.contains(u))
                    continue;
                const auto gi = analysis.groups_of_node.find(u);
                if (gi != analysis.groups_of_node.end()) {
                    for (int cg : gi->second) {
                        if (cg != own)
                            consumer_groups.insert(cg);
                    }
                }
            }
            const int extra =
                static_cast<int>(consumer_groups.size());
            remat_extra.emplace(id, extra);
            op.recompute_factor =
                std::max(op.recompute_factor, 1.0 + extra);
            plan.extra_bytes_read +=
                static_cast<double>(extra) *
                node.shape().numElements() *
                dtypeSizeBytes(node.dtype());
        }

        if (output_set.count(id)) {
            op.out_space = BufferSpace::Output;
        } else if (auto s = memory.schemes.find(id);
                   s != memory.schemes.end()) {
            op.out_space = schemeBufferSpace(s->second);
        } else {
            op.out_space = BufferSpace::Register;
        }

        int part_group = boundary_group(id);
        if (part_group < 0 && it != analysis.groups_of_node.end() &&
            !it->second.empty()) {
            part_group = it->second.front();
        }
        if (part_group >= 0)
            op.partition = partition_of_group(part_group);

        plan.ops.push_back(op);
    }
    plan.num_block_barriers = num_regional + 2 * num_reduce;
    if (has_transpose)
        plan.read_coalescing = 0.5;

    // ---- Structural barrier points (mirror of the emitted kernel). ----
    // One regional barrier after each Shared store with an in-kernel
    // reader, one device-wide barrier after each Global stitch store,
    // plus write-after-read separators wherever arena slots reuse bytes.
    std::unordered_map<NodeId, int> op_pos;
    for (std::size_t i = 0; i < plan.ops.size(); ++i)
        op_pos.emplace(plan.ops[i].node, static_cast<int>(i));
    auto last_reader_pos = [&](int i) {
        int last = i;
        for (NodeId u : graph.users(plan.ops[i].node)) {
            const auto p = op_pos.find(u);
            if (p != op_pos.end())
                last = std::max(last, p->second);
        }
        return last;
    };
    auto trip_at = [&](int i) {
        return plan.ops[i].partition.known()
                   ? plan.ops[i].partition.tasks_per_block
                   : 1;
    };
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
        const BufferSpace space = plan.ops[i].out_space;
        if (space != BufferSpace::Shared && space != BufferSpace::Global)
            continue;
        const int self = static_cast<int>(i);
        if (last_reader_pos(self) == self)
            continue; // streamed out: no in-kernel reader to protect
        plan.barriers.push_back(
            BarrierPoint{self,
                         space == BufferSpace::Shared
                             ? BarrierScope::Block
                             : BarrierScope::Device,
                         trip_at(self)});
    }
    auto barrier_in = [&](int lo, int hi) {
        return std::any_of(plan.barriers.begin(), plan.barriers.end(),
                           [&](const BarrierPoint &b) {
                               return b.after_op >= lo && b.after_op < hi;
                           });
    };
    for (std::size_t a = 0; a < plan.shared_slots.size(); ++a) {
        for (std::size_t b = a + 1; b < plan.shared_slots.size(); ++b) {
            const SharedSlot &sa = plan.shared_slots[a];
            const SharedSlot &sb = plan.shared_slots[b];
            if (sa.offset_bytes >= sb.offset_bytes + sb.size_bytes ||
                sb.offset_bytes >= sa.offset_bytes + sa.size_bytes) {
                continue; // disjoint byte ranges, no reuse
            }
            const int def_a = op_pos.at(sa.node);
            const int def_b = op_pos.at(sb.node);
            const int last_a = last_reader_pos(def_a);
            const int last_b = last_reader_pos(def_b);
            if (def_a <= last_b && def_b <= last_a)
                continue; // concurrently live (planner never does this)
            const int lo = def_a < def_b ? last_a : last_b;
            const int hi = def_a < def_b ? def_b : def_a;
            if (!barrier_in(lo, hi)) {
                plan.barriers.push_back(BarrierPoint{
                    hi - 1, BarrierScope::Block, trip_at(hi - 1)});
            }
        }
    }
    std::sort(plan.barriers.begin(), plan.barriers.end(),
              [](const BarrierPoint &x, const BarrierPoint &y) {
                  return x.after_op < y.after_op;
              });

    // ---- Inputs: one load per distinct consuming group. ----
    for (NodeId in : cluster.inputs) {
        std::set<int> consuming_groups;
        for (NodeId u : graph.users(in)) {
            if (!cluster.contains(u))
                continue;
            const auto it = analysis.groups_of_node.find(u);
            if (it != analysis.groups_of_node.end())
                consuming_groups.insert(it->second.begin(),
                                        it->second.end());
        }
        plan.inputs.push_back(KernelInput{
            in, static_cast<double>(
                    std::max<std::size_t>(1, consuming_groups.size()))});
    }
    plan.outputs = cluster.outputs;

    // ---- Atomics from split / column reductions. ----
    CompiledCluster compiled;
    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
        const GroupSchedule &sched = schedules[g];
        if (!sched.mapping.uses_atomics)
            continue;
        const NodeId dom = analysis.groups[g].dominant;
        const Node &node = graph.node(dom);
        if (isReduce(node.kind())) {
            const ReduceInfo info = analyzeReduce(graph, dom);
            if (info.is_row_reduce) {
                // Split reduction: one atomic per cooperating block/row.
                plan.atomic_operations +=
                    static_cast<double>(info.rows) *
                    sched.mapping.split_factor;
            } else if (options.adaptive_thread_mapping) {
                // Tiled column-reduce: coalesced reads, one atomic per
                // block-aggregated partial (smem scratch already
                // budgeted by the reduction slab).
                plan.atomic_operations +=
                    static_cast<double>(info.rows * info.cols) /
                    std::max(1, sched.mapping.launch.block);
            } else {
                plan.atomic_operations +=
                    static_cast<double>(info.rows * info.cols) /
                    spec.warp_size;
                plan.read_coalescing =
                    std::min(plan.read_coalescing, 0.5);
            }
        }
        // Atomic accumulators need zero-initialization (memset).
        compiled.num_memcpy += 1;
        compiled.memcpy_bytes +=
            static_cast<double>(node.shape().numElements()) *
            dtypeSizeBytes(node.dtype());
    }

    // ---- Per-op access summaries (the kernel-access verifier's and
    // the CUDA emitter's shared view of the index arithmetic). Emitted
    // after the atomics pass so the final coalescing classes are known.
    {
        // The cost model prices coalescing as one divisor over all
        // reads/writes; the equivalent intra-warp stride class is its
        // reciprocal (1.0 -> stride 1, 0.5 -> stride 2).
        const auto stride_class = [](double coalescing) {
            if (coalescing >= 1.0)
                return std::int64_t{1};
            return static_cast<std::int64_t>(
                std::llround(1.0 / std::max(0.05, coalescing)));
        };
        const std::int64_t read_stride =
            stride_class(plan.read_coalescing);
        const std::int64_t write_stride =
            stride_class(plan.write_coalescing);

        const auto dims_of = [&](const OpPartition &part) {
            if (part.known()) {
                return std::array<std::int64_t, 3>{
                    part.launch.grid, part.tasks_per_block,
                    static_cast<std::int64_t>(part.launch.block)};
            }
            return std::array<std::int64_t, 3>{
                plan.launch.grid, 1,
                static_cast<std::int64_t>(plan.launch.block)};
        };
        const auto linear_access =
            [&](NodeId id, int pos, AccessKind kind, AccessSpace space,
                std::string buffer, const OpPartition &part,
                double repeat, std::int64_t stride, bool traffic) {
                const Node &node = graph.node(id);
                OpAccess access;
                access.node = id;
                access.op_index = pos;
                access.kind = kind;
                access.space = space;
                access.buffer = std::move(buffer);
                access.elem_bytes = dtypeSizeBytes(node.dtype());
                access.extent = node.shape().numElements();
                const auto dims = dims_of(part);
                access.index = linearEnumeration(access.extent, dims[0],
                                                 dims[1], dims[2]);
                if (access.index.maxIndex() >= access.extent)
                    access.guard = access.extent;
                access.warp_stride = stride;
                access.repeat = repeat;
                access.counts_traffic = traffic;
                plan.accesses.push_back(std::move(access));
            };
        // The shared arena is one float array; its accesses are
        // recorded in 4-byte word units regardless of the value dtype.
        const auto smem_access = [&](NodeId id, int pos,
                                     AccessKind kind) {
            const auto slot = std::find_if(
                plan.shared_slots.begin(), plan.shared_slots.end(),
                [id](const SharedSlot &s) { return s.node == id; });
            if (slot == plan.shared_slots.end())
                return;
            OpAccess access;
            access.node = id;
            access.op_index = pos;
            access.kind = kind;
            access.space = AccessSpace::Shared;
            access.buffer = "smem";
            access.elem_bytes = 4;
            access.extent = (plan.smem_per_block + 3) / 4;
            access.index.offset = slot->offset_bytes / 4;
            access.index.coeff_thread = 1;
            access.index.num_threads =
                std::max<std::int64_t>(1, slot->size_bytes / 4);
            access.warp_stride = 1;
            access.counts_traffic = false;
            plan.accesses.push_back(std::move(access));
        };

        // Kernel inputs: one full-tensor load per consuming group,
        // attributed to the first scheduled consumer's mapping.
        for (const KernelInput &input : plan.inputs) {
            int consumer = -1;
            for (NodeId u : graph.users(input.node)) {
                const auto p = op_pos.find(u);
                if (p != op_pos.end() &&
                    (consumer < 0 || p->second < consumer)) {
                    consumer = p->second;
                }
            }
            linear_access(input.node, std::max(0, consumer),
                          AccessKind::Read, AccessSpace::Global,
                          strCat("input:%", input.node),
                          consumer >= 0 ? plan.ops[consumer].partition
                                        : OpPartition{},
                          input.load_factor, read_stride, true);
        }

        // Scheduled ops: each result's store per its stitching scheme,
        // and the loads its in-kernel consumers perform. Off-chip
        // read-backs carry traffic once (the cost model counts one
        // read-back per Global intermediate).
        std::set<NodeId> scratch_read_counted;
        for (std::size_t i = 0; i < plan.ops.size(); ++i) {
            const ScheduledOp &op = plan.ops[i];
            const int pos = static_cast<int>(i);
            switch (op.out_space) {
              case BufferSpace::Register:
                break; // register-carried, no memory access
              case BufferSpace::Shared:
                smem_access(op.node, pos, AccessKind::Write);
                break;
              case BufferSpace::Global:
                linear_access(op.node, pos, AccessKind::Write,
                              AccessSpace::Scratch,
                              strCat("scratch:%", op.node),
                              op.partition, 1.0, write_stride, true);
                break;
              case BufferSpace::Output:
                linear_access(op.node, pos, AccessKind::Write,
                              AccessSpace::Global,
                              strCat("out:%", op.node), op.partition,
                              1.0, write_stride, true);
                break;
            }
            for (NodeId operand : graph.node(op.node).operands()) {
                const auto p = op_pos.find(operand);
                if (p == op_pos.end())
                    continue; // kernel input, recorded above
                const ScheduledOp &producer = plan.ops[p->second];
                if (producer.out_space == BufferSpace::Shared) {
                    smem_access(operand, pos, AccessKind::Read);
                } else if (producer.out_space == BufferSpace::Global) {
                    linear_access(
                        operand, pos, AccessKind::Read,
                        AccessSpace::Scratch,
                        strCat("scratch:%", operand), op.partition,
                        1.0, read_stride,
                        scratch_read_counted.insert(operand).second);
                }
            }
        }

        // Rematerialized boundary chains re-read their ancestors once
        // per extra consuming group (the extra_bytes_read term).
        for (const auto &[id, extra] : remat_extra) {
            if (extra <= 0)
                continue;
            const int pos = op_pos.at(id);
            linear_access(id, pos, AccessKind::Read,
                          AccessSpace::Global, strCat("remat:%", id),
                          plan.ops[pos].partition,
                          static_cast<double>(extra), read_stride,
                          true);
        }

        // A Global-scheme value with no in-kernel consumer is still
        // read back downstream; mirror workDescFor's accounting so the
        // AS751 cross-check holds by construction.
        for (std::size_t i = 0; i < plan.ops.size(); ++i) {
            const ScheduledOp &op = plan.ops[i];
            if (op.out_space != BufferSpace::Global ||
                scratch_read_counted.count(op.node)) {
                continue;
            }
            linear_access(op.node, static_cast<int>(i),
                          AccessKind::Read, AccessSpace::Scratch,
                          strCat("scratch:%", op.node), op.partition,
                          1.0, read_stride, true);
        }
    }

    compiled.global_scratch_bytes = memory.global_scratch_bytes;
    compiled.kernels.push_back(std::move(plan));

    // ---- Shape-parametric twins: when dynamic dims are declared,
    // emit symbolic extents/offsets alongside the concrete summaries
    // so the plan can be certified for its whole shape range. ----
    if (!options.shape_params.empty()) {
        attachSymbolicAccesses(graph, compiled.kernels.back(),
                               options.shape_params);
    }

    // ---- Stitch sanitizer + kernel-access verifier: prove the
    // emitted plan hazard-free and its index arithmetic sound. ----
    DiagnosticEngine engine;
    if (options.analyze) {
        sanitizeCompiledCluster(graph, compiled, spec, engine);
        verifyCompiledCluster(graph, compiled, spec, engine);
        if (!options.shape_params.empty()) {
            certifyCompiledCluster(graph, compiled, options.shape_params,
                                   engine);
        }
    }

    // ---- Render the final CUDA text and attach it to the plan (after
    // certification, so the emission carries the shape certificate).
    // The plan carries its own artifact from here on: the emitted-source
    // analyzer, the session analyzer dispatch and the artifact cache's
    // warm-load re-verification gate all check this text, not the
    // codegen's self-reported metadata alone. ----
    {
        KernelPlan &kernel = compiled.kernels.back();
        kernel.cuda_source =
            renderStitchKernelCuda(graph, cluster, spec, kernel, analysis,
                                   schedules, memory, launch,
                                   options.shape_params)
                .source;
    }

    if (options.analyze) {
        analyzeEmittedCuda(graph, compiled.kernels.back(), spec, engine);
        if (options.strict && engine.hasErrors()) {
            // A policy rejection, not a user error: the fallback ladder
            // recompiles the cluster less aggressively instead of dying.
            throw SanitizerPolicyError(
                strCat("stitch sanitizer found hazards:\n",
                       engine.renderText()));
        }
        if (!engine.empty())
            warn("stitch sanitizer:\n", engine.renderText());
        if (diagnostics)
            diagnostics->findings = std::move(engine);
    }

    if (diagnostics) {
        diagnostics->analysis = std::move(analysis);
        diagnostics->schedules = std::move(schedules);
        diagnostics->memory = std::move(memory);
        diagnostics->launch = launch;
    }
    return compiled;
}

} // namespace astitch
