/**
 * @file
 * Dominant-op identification, dominant merging and op grouping
 * (Sec 4.2/4.3 Step 1).
 *
 * Key observations from the paper:
 *   A. Local-scheme ops inherit thread mappings by element-wise index
 *      propagation, so only a few *dominant* ops need schedules.
 *   B. Reduces and heavy element-wise ops followed by broadcast must use
 *      regional/global schemes (one-to-many dependencies) — they, plus
 *      cluster outputs, are the dominant candidates.
 *
 * Candidates connected through only-local-scheme ops merge into one
 * group; the reduce (or the most expensive candidate) becomes the final
 * dominant, the rest become sub-dominants whose schedules arrive by
 * propagation. Merging is what enables operator-level data reuse: one
 * schedule per group means shared operands stay in registers.
 */
#ifndef ASTITCH_CORE_DOMINANT_ANALYSIS_H
#define ASTITCH_CORE_DOMINANT_ANALYSIS_H

#include <unordered_map>
#include <vector>

#include "compiler/clustering.h"

namespace astitch {

/** One schedule-propagation group. */
struct DominantGroup
{
    /** The final dominant whose thread mapping rules the group. */
    NodeId dominant = kInvalidNodeId;

    /** Demoted candidates inside this group. */
    std::vector<NodeId> sub_dominants;

    /** All member ops (sorted; includes dominant and sub-dominants). */
    std::vector<NodeId> members;
};

/** Result of the grouping analysis over one cluster. */
struct DominantAnalysis
{
    std::vector<DominantGroup> groups;

    /** Candidate dominants before merging (diagnostics / tests). */
    std::vector<NodeId> candidates;

    /**
     * Group ids per node. With dominant merging each node maps to one
     * group; with merging disabled (the HDM ablation) a local region
     * adjacent to several candidates is duplicated into each of their
     * groups, losing operator-level reuse.
     */
    std::unordered_map<NodeId, std::vector<int>> groups_of_node;

    /** True if @p node is a dominant or sub-dominant of any group. */
    bool isSchemeBoundary(NodeId node) const;
};

/**
 * Run candidate identification, (optional) dominant merging and op
 * grouping on @p cluster.
 */
DominantAnalysis analyzeDominants(const Graph &graph,
                                  const Cluster &cluster,
                                  bool enable_dominant_merging);

} // namespace astitch

#endif // ASTITCH_CORE_DOMINANT_ANALYSIS_H
