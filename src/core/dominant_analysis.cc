#include "core/dominant_analysis.h"

#include <algorithm>
#include <deque>
#include <set>

#include "compiler/kernel_plan.h"
#include "compiler/patterns.h"
#include "support/fault_injection.h"
#include "support/logging.h"

namespace astitch {

bool
DominantAnalysis::isSchemeBoundary(NodeId node) const
{
    for (const DominantGroup &g : groups) {
        if (g.dominant == node)
            return true;
        if (std::binary_search(g.sub_dominants.begin(),
                               g.sub_dominants.end(), node)) {
            return true;
        }
    }
    return false;
}

namespace {

/**
 * Group assignment with dominant merging.
 *
 * Observation A: a local op's thread mapping propagates *from its
 * consumer*. So groups form by reverse-topological consumer claiming:
 * reductions always anchor their own group (they generate the reduce
 * schedule), every other op joins the group of its first claimed
 * consumer — which keeps one-to-one chains intact inside a single group
 * (no artificial mid-chain boundaries) and realizes input fusion: a
 * reduce's producers join the reduce's group through the reduce itself.
 * Ops without an in-cluster consumer (cluster outputs, dead ends) seed
 * element-wise groups, which are then folded into the group of their
 * operand when one exists (Fig. 9's multiply.1 joining reduce.2's
 * group). Non-reduce candidates become sub-dominants of whatever group
 * claimed them.
 */
DominantAnalysis
analyzeMerged(const Graph &graph, const Cluster &cluster,
              const std::set<NodeId> &candidate_set,
              std::vector<NodeId> candidates)
{
    DominantAnalysis analysis;
    analysis.candidates = std::move(candidates);

    std::unordered_map<NodeId, int> claim; // node -> group id
    auto seed_group = [&](NodeId dominant) {
        DominantGroup group;
        group.dominant = dominant;
        const int gid = static_cast<int>(analysis.groups.size());
        analysis.groups.push_back(std::move(group));
        claim[dominant] = gid;
        return gid;
    };

    // Reverse-topological consumer claiming.
    for (auto it = cluster.nodes.rbegin(); it != cluster.nodes.rend();
         ++it) {
        const NodeId n = *it;
        if (isReduce(graph.node(n).kind())) {
            seed_group(n);
            continue;
        }
        bool claimed = false;
        for (NodeId u : graph.users(n)) {
            // Users have larger ids and are already claimed.
            if (cluster.contains(u) && claim.count(u)) {
                claim[n] = claim[u];
                claimed = true;
                break;
            }
        }
        if (!claimed)
            seed_group(n);
    }

    // Fold element-wise seed groups into the group of their dominant's
    // first in-cluster operand: the output inherits the producer's
    // schedule exactly (the strongest form of proactive adaptation).
    std::vector<int> fold_into(analysis.groups.size(), -1);
    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
        const NodeId dom = analysis.groups[g].dominant;
        if (isReduce(graph.node(dom).kind()))
            continue;
        for (NodeId op : graph.node(dom).operands()) {
            if (cluster.contains(op) && claim.count(op) &&
                claim[op] != static_cast<int>(g)) {
                int target = claim[op];
                // Follow folds already decided (operand groups have
                // smaller dominants only by construction order, but be
                // safe against chains).
                int hops = 0;
                while (fold_into[target] >= 0 &&
                       ++hops <= static_cast<int>(
                                     analysis.groups.size())) {
                    target = fold_into[target];
                }
                if (target != static_cast<int>(g))
                    fold_into[g] = target;
                break;
            }
        }
    }
    if (std::any_of(fold_into.begin(), fold_into.end(),
                    [](int t) { return t >= 0; })) {
        // Remap group ids compactly.
        std::vector<int> remap(analysis.groups.size(), -1);
        std::vector<DominantGroup> folded;
        for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
            if (fold_into[g] >= 0)
                continue;
            remap[g] = static_cast<int>(folded.size());
            folded.push_back(DominantGroup{
                analysis.groups[g].dominant, {}, {}});
        }
        auto resolve = [&](int g) {
            int hops = 0;
            while (fold_into[g] >= 0 &&
                   ++hops <= static_cast<int>(analysis.groups.size())) {
                g = fold_into[g];
            }
            return remap[g];
        };
        for (auto &[node, gid] : claim)
            gid = resolve(gid);
        analysis.groups = std::move(folded);
    }

    // Every cluster node must be claimed: each connected region contains
    // at least one candidate (its escaping nodes are outputs).
    //
    // Groups may only communicate through dominants and sub-dominants
    // (Sec 4.3 step 1): a node whose consumer was claimed by a different
    // group becomes an *implicit sub-dominant* — its value crosses
    // thread-mapping schedules and must be buffered regionally or
    // globally, never in registers.
    for (NodeId n : cluster.nodes) {
        panicIf(!claim.count(n), "node %", n,
                " not claimed by any dominant group");
        const int gid = claim[n];
        analysis.groups[gid].members.push_back(n);
        bool boundary = candidate_set.count(n) > 0;
        if (!boundary) {
            for (NodeId u : graph.users(n)) {
                if (cluster.contains(u) && claim.count(u) &&
                    claim[u] != gid) {
                    boundary = true;
                    break;
                }
            }
        }
        if (boundary && analysis.groups[gid].dominant != n)
            analysis.groups[gid].sub_dominants.push_back(n);
        analysis.groups_of_node[n].push_back(gid);
    }
    for (DominantGroup &g : analysis.groups) {
        std::sort(g.members.begin(), g.members.end());
        std::sort(g.sub_dominants.begin(), g.sub_dominants.end());
    }
    return analysis;
}

/**
 * Group assignment without dominant merging (the HDM ablation): every
 * candidate anchors its own group, and each local region joins *every*
 * adjacent candidate's group. The duplicated membership models the lost
 * operator-level reuse: incompatible schedules per group mean shared
 * operands are reloaded and shared ops recomputed (Sec 4.3 Step 2's
 * broadcast.2 example).
 */
DominantAnalysis
analyzeUnmerged(const Graph &graph, const Cluster &cluster,
                const std::set<NodeId> &candidate_set,
                std::vector<NodeId> candidates)
{
    DominantAnalysis analysis;
    analysis.candidates = std::move(candidates);

    std::unordered_map<NodeId, int> group_of_candidate;
    for (NodeId id : analysis.candidates) {
        DominantGroup group;
        group.dominant = id;
        group.members.push_back(id);
        group_of_candidate[id] = static_cast<int>(analysis.groups.size());
        analysis.groups.push_back(std::move(group));
    }

    // Local components (cluster minus candidates).
    std::unordered_map<NodeId, int> component_of;
    std::vector<std::vector<NodeId>> components;
    for (NodeId seedling : cluster.nodes) {
        if (candidate_set.count(seedling) || component_of.count(seedling))
            continue;
        const int cid = static_cast<int>(components.size());
        components.emplace_back();
        std::vector<NodeId> stack{seedling};
        component_of[seedling] = cid;
        while (!stack.empty()) {
            const NodeId n = stack.back();
            stack.pop_back();
            components[cid].push_back(n);
            auto visit = [&](NodeId m) {
                if (cluster.contains(m) && !candidate_set.count(m) &&
                    !component_of.count(m)) {
                    component_of[m] = cid;
                    stack.push_back(m);
                }
            };
            for (NodeId op : graph.node(n).operands())
                visit(op);
            for (NodeId u : graph.users(n))
                visit(u);
        }
        std::sort(components[cid].begin(), components[cid].end());
    }

    // Attach each component to every adjacent candidate group.
    for (auto &component : components) {
        std::set<int> adjacent;
        for (NodeId n : component) {
            auto visit = [&](NodeId m) {
                if (cluster.contains(m) && candidate_set.count(m))
                    adjacent.insert(group_of_candidate[m]);
            };
            for (NodeId op : graph.node(n).operands())
                visit(op);
            for (NodeId u : graph.users(n))
                visit(u);
        }
        panicIf(adjacent.empty(), "local region without any candidate");
        for (int g : adjacent) {
            for (NodeId n : component)
                analysis.groups[g].members.push_back(n);
        }
    }

    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
        auto &members = analysis.groups[g].members;
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        for (NodeId n : members)
            analysis.groups_of_node[n].push_back(static_cast<int>(g));
    }
    return analysis;
}

} // namespace

DominantAnalysis
analyzeDominants(const Graph &graph, const Cluster &cluster,
                 bool enable_dominant_merging)
{
    faultPoint("dominant-analysis");

    // ---- Candidate identification (observation B). ----
    // Reduces, heavy element-wise ops feeding broadcast, and cluster
    // outputs need regional/global schemes; everything else is Local.
    std::set<NodeId> candidate_set;
    for (NodeId id : cluster.nodes) {
        const Node &node = graph.node(id);
        const bool is_output = std::binary_search(
            cluster.outputs.begin(), cluster.outputs.end(), id);
        if (isReduce(node.kind()) ||
            (isHeavyElementwise(node.kind()) &&
             feedsBroadcast(graph, id, &cluster)) ||
            is_output) {
            candidate_set.insert(id);
        }
    }
    std::vector<NodeId> candidates(candidate_set.begin(),
                                   candidate_set.end());
    panicIf(candidates.empty(), "cluster without dominant candidates");

    return enable_dominant_merging
               ? analyzeMerged(graph, cluster, candidate_set,
                               std::move(candidates))
               : analyzeUnmerged(graph, cluster, candidate_set,
                                 std::move(candidates));
}

} // namespace astitch
