#include "core/adaptive_mapping.h"

#include <algorithm>

#include "support/logging.h"

namespace astitch {

std::int64_t
blocksPerWaveFor(const GpuSpec &spec, int block_size,
                 std::int64_t smem_per_block)
{
    const Occupancy occ =
        computeOccupancyCached(spec, block_size, 32, smem_per_block);
    if (occ.blocks_per_sm == 0)
        return spec.num_sms;
    return occ.blocksPerWave(spec);
}

namespace {

/** Clamp a forced block budget to a legal stitched-kernel block size. */
int
clampOverrideBlock(const GpuSpec &spec, int block)
{
    block = std::min(block, spec.max_threads_per_block);
    return roundUpToWarp(spec, std::max(block, 1));
}

} // namespace

AdaptiveMapping
adaptiveRowReduce(const GpuSpec &spec, std::int64_t rows,
                  std::int64_t cols, const MappingOverride &ov)
{
    fatalIf(rows <= 0 || cols <= 0, "degenerate reduction ", rows, "x",
            cols);
    if (ov.any()) {
        AdaptiveMapping m;
        const int budget =
            clampOverrideBlock(spec, ov.block > 0
                                         ? ov.block
                                         : spec.max_threads_per_block);
        if (ov.split > 1) {
            // Forced task splitting: same shape as the heuristic split
            // branch, with the factor clamped so the grid stays within
            // one wave and no block is left without columns.
            const std::int64_t bpw =
                blocksPerWaveFor(spec, budget, 8 * 1024);
            const std::int64_t by_cols =
                std::max<std::int64_t>(1, (cols + budget - 1) / budget);
            const std::int64_t max_split = std::max<std::int64_t>(
                1, std::min<std::int64_t>(by_cols,
                                          (bpw + rows - 1) / rows));
            m.split_factor = static_cast<int>(
                std::min<std::int64_t>(ov.split, max_split));
            m.launch = LaunchDims{rows * m.split_factor, budget};
            m.uses_atomics = m.split_factor > 1;
            m.rows_per_block = 1;
            return m;
        }
        // Forced block budget with horizontal + vertical packing.
        const std::int64_t bpw = blocksPerWaveFor(spec, budget, 8 * 1024);
        const int threads_per_row =
            roundUpToWarp(spec, std::min<std::int64_t>(cols, budget));
        m.rows_per_block =
            std::max<std::int64_t>(1, budget / threads_per_row);
        m.rows_per_block = std::min(m.rows_per_block, rows);
        const int block =
            static_cast<int>(m.rows_per_block) * threads_per_row;
        std::int64_t grid =
            (rows + m.rows_per_block - 1) / m.rows_per_block;
        if (grid > bpw) {
            m.tasks_per_block = (grid + bpw - 1) / bpw;
            grid = (grid + m.tasks_per_block - 1) / m.tasks_per_block;
        }
        m.launch = LaunchDims{std::max<std::int64_t>(1, grid), block};
        return m;
    }
    AdaptiveMapping m;
    const int max_block = spec.max_threads_per_block;
    const std::int64_t bpw = blocksPerWaveFor(spec, max_block, 8 * 1024);

    if (rows < bpw && cols > max_block) {
        // Task splitting (Fig. 8-(b)): too few rows to fill the device
        // and long rows — split each row over several blocks joined by a
        // cross-block atomic. Pick the factor that maximizes modelled
        // device utilization without spilling into a ragged extra wave.
        const std::int64_t by_cols = (cols + max_block - 1) / max_block;
        const std::int64_t max_split =
            std::min<std::int64_t>(by_cols, (bpw + rows - 1) / rows);
        std::int64_t best_split = 1;
        double best_score = -1.0;
        // The occupancy query depends only on (block, regs, smem), not
        // on the split factor — loop-invariant, so computed once.
        const Occupancy occ =
            computeOccupancyCached(spec, max_block, 32, 8 * 1024);
        for (std::int64_t split = 1; split <= max_split; ++split) {
            const LaunchDims launch{rows * split, max_block};
            const double score = achievedOccupancy(spec, launch, occ) *
                                 smEfficiency(spec, launch, occ);
            if (score > best_score + 1e-12) {
                best_score = score;
                best_split = split;
            }
        }
        m.split_factor = static_cast<int>(best_split);
        m.launch = LaunchDims{rows * m.split_factor, max_block};
        m.uses_atomics = m.split_factor > 1;
        m.rows_per_block = 1;
    } else {
        // Horizontal packing (Fig. 8-(a)): several small row-tasks share
        // one large block.
        const int threads_per_row = roundUpToWarp(
            spec, std::min<std::int64_t>(cols, max_block));
        m.rows_per_block = std::max<std::int64_t>(
            1, max_block / threads_per_row);
        m.rows_per_block = std::min(m.rows_per_block, rows);
        const int block =
            static_cast<int>(m.rows_per_block) * threads_per_row;
        std::int64_t grid = (rows + m.rows_per_block - 1) /
                            m.rows_per_block;
        // Vertical packing: bound the grid to one wave; each block loops
        // over several row-groups in order.
        if (grid > bpw) {
            m.tasks_per_block = (grid + bpw - 1) / bpw;
            grid = (grid + m.tasks_per_block - 1) / m.tasks_per_block;
        }
        m.launch = LaunchDims{std::max<std::int64_t>(1, grid), block};
    }
    return m;
}

AdaptiveMapping
adaptiveColumnReduce(const GpuSpec &spec, std::int64_t rows,
                     std::int64_t cols, const MappingOverride &ov)
{
    AdaptiveMapping m;
    const int block =
        ov.block > 0 ? clampOverrideBlock(spec, ov.block) : 256;
    const std::int64_t total = rows * cols;
    const std::int64_t bpw = blocksPerWaveFor(spec, block, 0);
    std::int64_t grid = std::max<std::int64_t>(1, (total + block - 1) /
                                                      block);
    if (grid > bpw) {
        m.tasks_per_block = (grid + bpw - 1) / bpw;
        grid = (grid + m.tasks_per_block - 1) / m.tasks_per_block;
    }
    m.launch = LaunchDims{grid, block};
    m.uses_atomics = true;
    return m;
}

AdaptiveMapping
adaptiveElementwise(const GpuSpec &spec, std::int64_t num_elements,
                    const MappingOverride &ov)
{
    AdaptiveMapping m;
    const int block =
        ov.block > 0 ? clampOverrideBlock(spec, ov.block) : 256;
    const std::int64_t bpw = blocksPerWaveFor(spec, block, 0);
    std::int64_t grid = std::max<std::int64_t>(
        1, (num_elements + block - 1) / block);
    if (grid > bpw) {
        m.tasks_per_block = (grid + bpw - 1) / bpw;
        grid = (grid + m.tasks_per_block - 1) / m.tasks_per_block;
    }
    m.launch = LaunchDims{grid, block};
    return m;
}

} // namespace astitch
