/**
 * @file
 * Stitch-op code generation: one GPU kernel per stitched cluster.
 *
 * Orchestrates the whole AStitch pipeline of Sec 4: dominant analysis ->
 * adaptive thread mapping + schedule propagation -> passive/proactive
 * locality -> memory planning -> resource-aware launch configuration ->
 * a single KernelPlan with hierarchical data reuse (register / shared /
 * global buffering, no recomputation).
 */
#ifndef ASTITCH_CORE_STITCH_CODEGEN_H
#define ASTITCH_CORE_STITCH_CODEGEN_H

#include "analysis/access_model.h"
#include "analysis/diagnostics.h"
#include "core/launch_config.h"
#include "core/memory_planner.h"

namespace astitch {

/**
 * Explicit per-cluster decisions imposed on the heuristic pipeline (the
 * autotuner's handle, see src/opt/autotuner.h): stitch-scheme choices
 * for boundary values and thread-mapping overrides keyed by group
 * dominant. Empty (the default) leaves the pipeline untouched. Scheme
 * overrides apply only to values the locality pass already assigned a
 * scheme, and never relax an atomics/split producer below Global; the
 * memory planner may still demote a forced Regional on budget.
 */
struct TuningOverrides
{
    std::unordered_map<NodeId, StitchScheme> schemes;
    MappingOverrideMap mappings;

    bool empty() const { return schemes.empty() && mappings.empty(); }
};

/** Feature switches, matching the paper's ablation study (Table 4). */
struct AStitchOptions
{
    /** Adaptive thread mapping (task packing/splitting) — "ATM". */
    bool adaptive_thread_mapping = true;

    /**
     * Exhaustive stitching with hierarchical data management — "HDM".
     * When false, the backend falls back to XLA's fusion scopes (but can
     * still apply adaptive mappings to them).
     */
    bool hierarchical_stitching = true;

    /** Dominant merging (operator-level data reuse). */
    bool dominant_merging = true;

    /** Shared-memory budget per block; <= 0 uses the device limit. */
    std::int64_t smem_budget_per_block = 0;

    /** Run the stitch sanitizer over every emitted plan. */
    bool analyze = true;

    /** Promote sanitizer errors to fatal() instead of warnings. */
    bool strict = false;

    /**
     * Declared dynamic-dimension ranges. When non-empty, codegen emits
     * shape-parametric twins of its access summaries (and, with
     * `analyze` on, certifies the plan for the whole range — AS8xx).
     */
    std::vector<ShapeDim> shape_params;

    /** Autotuner decisions to impose; empty keeps pure heuristics. */
    TuningOverrides tuning;
};

/** Introspection output for tests and the compiler-explorer example. */
struct StitchDiagnostics
{
    DominantAnalysis analysis;
    std::vector<GroupSchedule> schedules;
    MemoryPlan memory;
    LaunchConfig launch;
    DiagnosticEngine findings; ///< sanitizer results (when analyze is on)
};

/**
 * Compile @p cluster into a single stitched kernel.
 * @p diagnostics, when non-null, receives the intermediate pass results.
 */
CompiledCluster compileStitchOp(const Graph &graph, const Cluster &cluster,
                                const GpuSpec &spec,
                                const AStitchOptions &options,
                                StitchDiagnostics *diagnostics = nullptr);

} // namespace astitch

#endif // ASTITCH_CORE_STITCH_CODEGEN_H
