#include "core/astitch_backend.h"

#include "compiler/loop_fusion.h"
#include "core/adaptive_mapping.h"

namespace astitch {

AStitchBackend::AStitchBackend(AStitchOptions options) : options_(options)
{
}

std::string
AStitchBackend::name() const
{
    if (!options_.hierarchical_stitching)
        return "astitch-atm";
    if (!options_.dominant_merging)
        return "astitch-hdm";
    return "astitch";
}

bool
AStitchBackend::wantsRemoteStitching() const
{
    // Remote stitching only makes sense when clusters compile into
    // single stitched kernels.
    return options_.hierarchical_stitching;
}

AStitchOptions
AStitchBackend::atmOnly()
{
    AStitchOptions options;
    options.hierarchical_stitching = false;
    options.dominant_merging = false;
    return options;
}

AStitchOptions
AStitchBackend::withoutMerging()
{
    AStitchOptions options;
    options.dominant_merging = false;
    return options;
}

CompiledCluster
AStitchBackend::compileCluster(const Graph &graph, const Cluster &cluster,
                               const GpuSpec &spec) const
{
    if (!options_.hierarchical_stitching) {
        // ATM ablation: XLA's fusion decisions, AStitch's thread
        // mappings.
        LoopFusionRules rules;
        rules.fuse_heavy_into_broadcast_consumer = false;
        rules.allow_duplication = true;
        rules.tiled_column_reduce = options_.adaptive_thread_mapping;
        if (options_.adaptive_thread_mapping) {
            rules.reduce_mapper = [](const GpuSpec &s,
                                     const ReduceInfo &info) {
                const AdaptiveMapping m =
                    info.is_row_reduce
                        ? adaptiveRowReduce(s, info.rows, info.cols)
                        : adaptiveColumnReduce(s, info.rows, info.cols);
                return m.launch;
            };
            rules.elementwise_mapper = [](const GpuSpec &s,
                                          std::int64_t n) {
                return adaptiveElementwise(s, n).launch;
            };
        }
        return compileClusterLoopFusion(graph, cluster, spec, rules);
    }
    return compileStitchOp(graph, cluster, spec, options_);
}

} // namespace astitch
