#include "core/launch_config.h"

#include <algorithm>

#include "support/fault_injection.h"
#include "support/logging.h"

namespace astitch {

LaunchConfig
configureLaunch(const GpuSpec &spec, std::int64_t logical_grid, int block,
                std::int64_t smem_per_block, bool needs_global_barrier)
{
    faultPoint("launch-config");
    LaunchConfig config;
    fatalIf(block <= 0 || block > spec.max_threads_per_block,
            "invalid stitched block size ", block);

    // Step 1 (assume): a conservative 32-register bound.
    constexpr int assumed_regs = 32;
    const Occupancy assumed =
        computeOccupancy(spec, block, assumed_regs, smem_per_block);
    fatalIf(assumed.blocks_per_sm == 0,
            "stitched kernel cannot launch: block ", block, ", smem ",
            smem_per_block);

    // Step 2 (relax): find the largest register budget that keeps the
    // assumed residency — occupancy may be bounded by shared memory, in
    // which case registers are free to grow.
    int relaxed = assumed_regs;
    for (int regs = assumed_regs; regs <= spec.max_regs_per_thread;
         ++regs) {
        const Occupancy occ =
            computeOccupancy(spec, block, regs, smem_per_block);
        if (occ.blocks_per_sm >= assumed.blocks_per_sm)
            relaxed = regs;
        else
            break;
    }

    // Step 3 (apply): the relaxed bound becomes the compiler annotation.
    config.regs_per_thread = relaxed;
    config.blocks_per_wave = assumed.blocksPerWave(spec);

    std::int64_t grid = std::max<std::int64_t>(1, logical_grid);
    if (needs_global_barrier && grid > config.blocks_per_wave) {
        // Vertical packing: fold the excess logical blocks into the wave.
        config.grid_packing =
            (grid + config.blocks_per_wave - 1) / config.blocks_per_wave;
        grid = (grid + config.grid_packing - 1) / config.grid_packing;
    }
    config.launch = LaunchDims{grid, block};
    return config;
}

} // namespace astitch
