#include "core/launch_config.h"

#include <algorithm>

#include "support/fault_injection.h"
#include "support/logging.h"

namespace astitch {

namespace {

/** Shared steps 1 and 3: the occupancy probe is pluggable so the
 * optimized and reference paths stay textually identical otherwise. */
template <typename OccupancyFn, typename RelaxFn>
LaunchConfig
configureLaunchImpl(const GpuSpec &spec, std::int64_t logical_grid,
                    int block, std::int64_t smem_per_block,
                    bool needs_global_barrier, OccupancyFn &&occupancy,
                    RelaxFn &&relax)
{
    faultPoint("launch-config");
    LaunchConfig config;
    fatalIf(block <= 0 || block > spec.max_threads_per_block,
            "invalid stitched block size ", block);

    // Step 1 (assume): a conservative 32-register bound.
    constexpr int assumed_regs = 32;
    const Occupancy assumed =
        occupancy(spec, block, assumed_regs, smem_per_block);
    fatalIf(assumed.blocks_per_sm == 0,
            "stitched kernel cannot launch: block ", block, ", smem ",
            smem_per_block);

    // Step 2 (relax): find the largest register budget that keeps the
    // assumed residency — occupancy may be bounded by shared memory, in
    // which case registers are free to grow.
    const int relaxed = relax(assumed);

    // Step 3 (apply): the relaxed bound becomes the compiler annotation.
    config.regs_per_thread = relaxed;
    config.blocks_per_wave = assumed.blocksPerWave(spec);

    std::int64_t grid = std::max<std::int64_t>(1, logical_grid);
    if (needs_global_barrier && grid > config.blocks_per_wave) {
        // Vertical packing: fold the excess logical blocks into the wave.
        config.grid_packing =
            (grid + config.blocks_per_wave - 1) / config.blocks_per_wave;
        grid = (grid + config.grid_packing - 1) / config.grid_packing;
    }
    config.launch = LaunchDims{grid, block};
    return config;
}

} // namespace

LaunchConfig
configureLaunch(const GpuSpec &spec, std::int64_t logical_grid, int block,
                std::int64_t smem_per_block, bool needs_global_barrier)
{
    constexpr int assumed_regs = 32;
    return configureLaunchImpl(
        spec, logical_grid, block, smem_per_block, needs_global_barrier,
        computeOccupancyCached, [&](const Occupancy &assumed) {
            // blocks_per_sm(regs) is non-increasing in regs (the
            // register limit tightens while every other limiter is
            // constant), so "keeps the assumed residency" is a monotone
            // predicate: binary-search the largest register budget that
            // still satisfies it instead of scanning every value.
            int lo = assumed_regs;
            int hi = spec.max_regs_per_thread;
            while (lo < hi) {
                const int mid = lo + (hi - lo + 1) / 2;
                const Occupancy occ = computeOccupancyCached(
                    spec, block, mid, smem_per_block);
                if (occ.blocks_per_sm >= assumed.blocks_per_sm)
                    lo = mid;
                else
                    hi = mid - 1;
            }
            return lo;
        });
}

LaunchConfig
configureLaunchReference(const GpuSpec &spec, std::int64_t logical_grid,
                         int block, std::int64_t smem_per_block,
                         bool needs_global_barrier)
{
    constexpr int assumed_regs = 32;
    return configureLaunchImpl(
        spec, logical_grid, block, smem_per_block, needs_global_barrier,
        computeOccupancy, [&](const Occupancy &assumed) {
            int relaxed = assumed_regs;
            for (int regs = assumed_regs;
                 regs <= spec.max_regs_per_thread; ++regs) {
                const Occupancy occ =
                    computeOccupancy(spec, block, regs, smem_per_block);
                if (occ.blocks_per_sm >= assumed.blocks_per_sm)
                    relaxed = regs;
                else
                    break;
            }
            return relaxed;
        });
}

} // namespace astitch
