#include "core/locality_check.h"

#include <algorithm>

#include "support/logging.h"

namespace astitch {

SchemeMap
finalizeSchemes(const Graph &graph, const Cluster &cluster,
                const DominantAnalysis &analysis,
                const std::vector<GroupSchedule> &schedules)
{
    SchemeMap schemes;

    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
        const DominantGroup &group = analysis.groups[g];
        const GroupSchedule &producer = schedules[g];

        std::vector<NodeId> boundaries = group.sub_dominants;
        boundaries.push_back(group.dominant);

        for (NodeId x : boundaries) {
            // A boundary node may be listed in several groups when
            // dominant merging is off; decide once, conservatively.
            if (schemes.count(x))
                continue;

            // Split or atomic finalization: the value is complete only
            // after cross-block sync — block locality is impossible.
            if (producer.mapping.uses_atomics ||
                producer.mapping.split_factor > 1) {
                schemes[x] = StitchScheme::Global;
                continue;
            }

            bool regional = true;
            for (NodeId u : graph.users(x)) {
                if (!cluster.contains(u))
                    continue;
                auto it = analysis.groups_of_node.find(u);
                panicIf(it == analysis.groups_of_node.end(),
                        "cluster node without group");
                for (int cg : it->second) {
                    const GroupSchedule &consumer = schedules[cg];
                    // Passive check: the consuming block must read
                    // exactly the range the producing block wrote, which
                    // our mapping model guarantees iff the partitionings
                    // coincide.
                    if (!(consumer.mapping.launch ==
                              producer.mapping.launch &&
                          consumer.mapping.rows_per_block ==
                              producer.mapping.rows_per_block &&
                          consumer.mapping.tasks_per_block ==
                              producer.mapping.tasks_per_block)) {
                        regional = false;
                        break;
                    }
                }
                if (!regional)
                    break;
            }
            schemes[x] =
                regional ? StitchScheme::Regional : StitchScheme::Global;
        }
    }
    return schemes;
}

} // namespace astitch
