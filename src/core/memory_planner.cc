#include "core/memory_planner.h"

#include <algorithm>
#include <map>

#include "support/fault_injection.h"
#include "support/logging.h"

namespace astitch {

namespace {

/** Per-block bytes of a Regional buffer for node @p x in group @p g. */
std::int64_t
regionalBytesPerBlock(const Graph &graph, const GroupSchedule &sched,
                      NodeId x)
{
    const Node &node = graph.node(x);
    const std::int64_t elems = node.shape().numElements();
    const std::int64_t grid = std::max<std::int64_t>(
        1, sched.mapping.launch.grid);
    const std::int64_t logical_blocks =
        grid * std::max<std::int64_t>(1, sched.mapping.tasks_per_block);
    const std::int64_t per_block =
        (elems + logical_blocks - 1) / logical_blocks;
    return per_block * dtypeSizeBytes(node.dtype());
}

/**
 * Peak footprint of liveness intervals [def, last_use] after slot reuse:
 * a scan over the schedule order accumulating live sizes.
 */
std::int64_t
peakLiveBytes(const std::map<NodeId, std::pair<NodeId, std::int64_t>>
                  &intervals)
{
    // Events: +size at def, -size after last use.
    std::map<NodeId, std::int64_t> delta;
    for (const auto &[def, entry] : intervals) {
        delta[def] += entry.second;
        delta[entry.first + 1] -= entry.second;
    }
    std::int64_t live = 0;
    std::int64_t peak = 0;
    for (const auto &[pos, d] : delta) {
        live += d;
        peak = std::max(peak, live);
    }
    return peak;
}

/** A concrete arena layout: slot offsets plus the bytes they span. */
struct ArenaLayout
{
    std::int64_t extent = 0;
    std::vector<SharedSlot> slots;
};

/**
 * First-fit storage allocation over liveness intervals [def, last_use]:
 * values whose lifetimes are disjoint may share bytes, concurrently-live
 * values get disjoint ranges. Allocating in definition order keeps the
 * layout deterministic and, for the chain-shaped lifetimes stitched
 * clusters produce, matches the event-scan peak.
 */
ArenaLayout
allocateArena(const std::map<NodeId, std::pair<NodeId, std::int64_t>>
                  &intervals)
{
    ArenaLayout layout;
    for (const auto &[def, entry] : intervals) {
        const NodeId last = entry.first;
        const std::int64_t size = entry.second;
        // Byte ranges already claimed by lifetime-overlapping slots.
        std::vector<std::pair<std::int64_t, std::int64_t>> busy;
        for (const SharedSlot &slot : layout.slots) {
            const auto other = intervals.find(slot.node);
            if (slot.node <= last && def <= other->second.first) {
                busy.emplace_back(slot.offset_bytes,
                                  slot.offset_bytes + slot.size_bytes);
            }
        }
        std::sort(busy.begin(), busy.end());
        std::int64_t offset = 0;
        for (const auto &[lo, hi] : busy) {
            if (offset + size <= lo)
                break;
            offset = std::max(offset, hi);
        }
        layout.slots.push_back(SharedSlot{def, offset, size});
        layout.extent = std::max(layout.extent, offset + size);
    }
    return layout;
}

} // namespace

MemoryPlan
planMemory(const Graph &graph, const Cluster &cluster,
           const DominantAnalysis &analysis,
           const std::vector<GroupSchedule> &schedules, SchemeMap schemes,
           const GpuSpec &spec, std::int64_t smem_budget)
{
    faultPoint("memory-planner");
    MemoryPlan plan;
    if (smem_budget <= 0)
        smem_budget = spec.smem_per_block_bytes;

    // Group of a producer boundary node (first group listing it as
    // dominant or sub-dominant).
    auto producing_group = [&](NodeId x) -> int {
        for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
            const DominantGroup &group = analysis.groups[g];
            if (group.dominant == x ||
                std::binary_search(group.sub_dominants.begin(),
                                   group.sub_dominants.end(), x)) {
                return static_cast<int>(g);
            }
        }
        panic("boundary node ", x, " has no producing group");
    };

    auto last_use = [&](NodeId x) {
        NodeId last = x;
        for (NodeId u : graph.users(x)) {
            if (cluster.contains(u))
                last = std::max(last, u);
        }
        return last;
    };

    // Reduction tree scratch: one block-wide slab, reused across reduces.
    std::int64_t static_scratch = 0;
    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
        if (schedules[g].is_reduce_group) {
            static_scratch = std::max<std::int64_t>(
                static_scratch, schedules[g].mapping.launch.block * 4);
        }
    }

    // Iteratively demote until the peak fits the budget.
    while (true) {
        std::map<NodeId, std::pair<NodeId, std::int64_t>> intervals;
        for (const auto &[x, scheme] : schemes) {
            if (scheme != StitchScheme::Regional)
                continue;
            // A boundary with no in-kernel consumer (a pure cluster
            // output) needs no intermediate buffer — it is streamed to
            // framework memory directly.
            if (last_use(x) == x)
                continue;
            const int g = producing_group(x);
            intervals[x] = {last_use(x),
                            regionalBytesPerBlock(graph, schedules[g], x)};
        }
        const ArenaLayout layout = allocateArena(intervals);
        const std::int64_t used = layout.extent + static_scratch;
        if (used <= smem_budget) {
            plan.smem_per_block = used;
            plan.arena = layout.slots;
            // Report absolute offsets: slots sit after the scratch slab.
            for (SharedSlot &slot : plan.arena)
                slot.offset_bytes += static_scratch;
            break;
        }
        // Demote the largest Regional buffer (one by one, Sec 4.4).
        // Element-wise values rematerialize (recompute per consumer
        // group, no off-chip spill); reductions demote to Global.
        NodeId victim = kInvalidNodeId;
        std::int64_t victim_bytes = -1;
        for (const auto &[x, entry] : intervals) {
            if (entry.second > victim_bytes) {
                victim_bytes = entry.second;
                victim = x;
            }
        }
        fatalIf(victim == kInvalidNodeId,
                "shared-memory budget ", smem_budget,
                " too small even for reduction scratch ", static_scratch);
        if (isReduce(graph.node(victim).kind())) {
            schemes[victim] = StitchScheme::Global;
        } else {
            schemes.erase(victim);
            plan.rematerialized.insert(victim);
        }
        ++plan.num_demoted;
    }

    // Peak global scratch (liveness-reused).
    std::map<NodeId, std::pair<NodeId, std::int64_t>> global_intervals;
    for (const auto &[x, scheme] : schemes) {
        if (scheme != StitchScheme::Global || last_use(x) == x)
            continue;
        const Node &node = graph.node(x);
        global_intervals[x] = {
            last_use(x),
            node.shape().numElements() * dtypeSizeBytes(node.dtype())};
    }
    plan.global_scratch_bytes = peakLiveBytes(global_intervals);
    plan.schemes = std::move(schemes);
    return plan;
}

} // namespace astitch
