#include "core/stitch_scheme.h"

#include "support/logging.h"

namespace astitch {

std::string
stitchSchemeName(StitchScheme scheme)
{
    switch (scheme) {
      case StitchScheme::Independent:
        return "independent";
      case StitchScheme::Local:
        return "local";
      case StitchScheme::Regional:
        return "regional";
      case StitchScheme::Global:
        return "global";
    }
    panic("unknown stitch scheme");
}

BufferSpace
schemeBufferSpace(StitchScheme scheme)
{
    switch (scheme) {
      case StitchScheme::Independent:
      case StitchScheme::Local:
        return BufferSpace::Register;
      case StitchScheme::Regional:
        return BufferSpace::Shared;
      case StitchScheme::Global:
        return BufferSpace::Global;
    }
    panic("unknown stitch scheme");
}

} // namespace astitch
