/**
 * @file
 * Adaptive thread mapping: task packing and task splitting (Sec 3.3).
 *
 * Irregular production tensor shapes break the naive mappings of the
 * baselines (Fig. 6). AStitch adapts:
 *
 *   - *Horizontal packing* merges many small per-row blocks into one
 *     large block (fixes <750000,32>: 32 rows x 32 threads per block);
 *   - *Vertical packing* folds multiple logical blocks into one physical
 *     block that loops over tasks, bounding the grid to one wave (the
 *     global-barrier requirement);
 *   - *Task splitting* spreads one long row over several blocks joined by
 *     cross-block atomics (fixes <64,30000>).
 */
#ifndef ASTITCH_CORE_ADAPTIVE_MAPPING_H
#define ASTITCH_CORE_ADAPTIVE_MAPPING_H

#include "compiler/thread_mapping.h"
#include "sim/occupancy.h"

namespace astitch {

/** A thread mapping decided by the adaptive pass. */
struct AdaptiveMapping
{
    /** Logical launch (before any whole-kernel physical capping). */
    LaunchDims launch{1, 256};

    /** Rows each block reduces (horizontal packing factor). */
    std::int64_t rows_per_block = 1;

    /** Blocks cooperating on one row (task splitting factor). */
    int split_factor = 1;

    /** Logical tasks each physical block loops over (vertical packing). */
    std::int64_t tasks_per_block = 1;

    /** True when cross-block atomics finalize the result. */
    bool uses_atomics = false;
};

/**
 * An explicit mapping decision imposed on the adaptive pass (by the
 * autotuner). Zero-valued fields keep the heuristic choice; with no
 * fields set the pass is byte-identical to the un-overridden one.
 * Overrides are legality-preserving by construction: block sizes are
 * warp-rounded and capped, split factors clamped so the grid still
 * fits one wave (the global-barrier requirement).
 */
struct MappingOverride
{
    /** Forced threads-per-block budget (rounded up to a warp). */
    int block = 0;

    /** Forced task-splitting factor for row reductions. */
    int split = 0;

    bool any() const { return block > 0 || split > 0; }
    bool operator==(const MappingOverride &o) const
    {
        return block == o.block && split == o.split;
    }
};

/**
 * Upper bound on resident blocks per wave for stitched kernels: blocks
 * of @p block_size threads at the assumed 32-register budget and @p
 * smem_per_block bytes of shared memory.
 */
std::int64_t blocksPerWaveFor(const GpuSpec &spec, int block_size,
                              std::int64_t smem_per_block);

/** Adaptive mapping for a row-reduction of @p rows x @p cols. */
AdaptiveMapping adaptiveRowReduce(const GpuSpec &spec, std::int64_t rows,
                                  std::int64_t cols,
                                  const MappingOverride &ov = {});

/** Adaptive mapping for a column-reduction (strided, atomics). */
AdaptiveMapping adaptiveColumnReduce(const GpuSpec &spec,
                                     std::int64_t rows, std::int64_t cols,
                                     const MappingOverride &ov = {});

/** Adaptive mapping for an element-wise group of @p num_elements. */
AdaptiveMapping adaptiveElementwise(const GpuSpec &spec,
                                    std::int64_t num_elements,
                                    const MappingOverride &ov = {});

} // namespace astitch

#endif // ASTITCH_CORE_ADAPTIVE_MAPPING_H
