/**
 * @file
 * Per-group thread-mapping decisions and schedule propagation
 * (Sec 4.3 Step 2).
 *
 * Only dominants get a schedule; every other op in the group inherits it
 * by element-wise index propagation (observation A). Reduce-dominated
 * groups prioritize parallelism and pick their mapping adaptively;
 * element-wise-dominated groups prioritize locality and *proactively
 * adapt* their mapping to match their producer group, making the
 * block-locality check succeed more often.
 */
#ifndef ASTITCH_CORE_SCHEDULE_PROPAGATION_H
#define ASTITCH_CORE_SCHEDULE_PROPAGATION_H

#include <unordered_map>
#include <vector>

#include "core/adaptive_mapping.h"
#include "core/dominant_analysis.h"

namespace astitch {

/** The thread-mapping schedule shared by one group. */
struct GroupSchedule
{
    AdaptiveMapping mapping;

    /** True when the dominant is a reduction. */
    bool is_reduce_group = false;

    /** True when the group adopted its producer's mapping. */
    bool proactively_adapted = false;
};

/**
 * Explicit mapping overrides keyed by group dominant, imposed on top of
 * the adaptive heuristics (the autotuner's handle into this pass). An
 * overridden group keeps its override even where the heuristic would
 * proactively adapt; un-overridden element-wise consumers still inherit
 * whatever mapping (overridden or not) their producer group ended up
 * with. Ignored when adaptive mapping is disabled.
 */
using MappingOverrideMap = std::unordered_map<NodeId, MappingOverride>;

/**
 * Decide the mapping of every group. With @p adaptive_mapping disabled
 * the naive baselines' mappings are used instead (the ablation study's
 * ATM-off configuration).
 */
std::vector<GroupSchedule>
computeGroupSchedules(const Graph &graph, const Cluster &cluster,
                      const DominantAnalysis &analysis, const GpuSpec &spec,
                      bool adaptive_mapping,
                      const MappingOverrideMap &overrides = {});

} // namespace astitch

#endif // ASTITCH_CORE_SCHEDULE_PROPAGATION_H
