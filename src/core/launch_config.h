/**
 * @file
 * Resource-aware launch configuration: assume-relax-apply (Sec 4.5).
 *
 * A stitched kernel with in-kernel global barriers must keep its grid
 * within one wave, but blocks-per-wave depends on register usage, which
 * is only known *after* compilation. AStitch breaks the circularity by
 * (1) assuming a small register bound (32), (2) computing the wave
 * capacity under that bound plus the planned shared memory, then
 * (3) relaxing the register bound as far as occupancy allows and applying
 * it as a compiler annotation (maxrregcount) when lowering.
 */
#ifndef ASTITCH_CORE_LAUNCH_CONFIG_H
#define ASTITCH_CORE_LAUNCH_CONFIG_H

#include "sim/occupancy.h"

namespace astitch {

/** Final launch decision for one stitched kernel. */
struct LaunchConfig
{
    LaunchDims launch;

    /** The relaxed-and-applied register bound. */
    int regs_per_thread = 32;

    /** Wave capacity under the final configuration. */
    std::int64_t blocks_per_wave = 0;

    /** Extra vertical-packing factor applied to cap the grid. */
    std::int64_t grid_packing = 1;
};

/**
 * Configure the physical launch. @p logical_grid is the widest logical
 * grid any group needs; @p block is the physical block size; @p
 * needs_global_barrier forces the one-wave cap.
 */
LaunchConfig configureLaunch(const GpuSpec &spec, std::int64_t logical_grid,
                             int block, std::int64_t smem_per_block,
                             bool needs_global_barrier);

/**
 * Reference (pre-optimization) implementation of configureLaunch(): the
 * relax step scans register budgets linearly and every occupancy query
 * recomputes. Retained for the equivalence property tests and the
 * compile-scale benchmark; configureLaunch() must return bit-identical
 * LaunchConfigs (the relaxed predicate is monotone in regs, so binary
 * search finds the same bound the scan does).
 */
LaunchConfig configureLaunchReference(const GpuSpec &spec,
                                      std::int64_t logical_grid, int block,
                                      std::int64_t smem_per_block,
                                      bool needs_global_barrier);

} // namespace astitch

#endif // ASTITCH_CORE_LAUNCH_CONFIG_H
