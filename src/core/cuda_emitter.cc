#include "core/cuda_emitter.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "compiler/thread_mapping.h"
#include "support/logging.h"
#include "support/strings.h"

namespace astitch {

namespace {

/** C identifier for a node's value. */
std::string
valueName(const Graph &graph, NodeId id)
{
    std::string name = graph.node(id).name();
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return "v_" + name;
}

/** The scalar C expression computing one element of @p node. */
std::string
elementExpr(const Graph &graph, const Node &node,
            const std::vector<std::string> &operand)
{
    switch (node.kind()) {
      case OpKind::Add:
        return strCat(operand[0], " + ", operand[1]);
      case OpKind::Sub:
        return strCat(operand[0], " - ", operand[1]);
      case OpKind::Mul:
        return strCat(operand[0], " * ", operand[1]);
      case OpKind::Div:
        return strCat(operand[0], " / ", operand[1]);
      case OpKind::Maximum:
        return strCat("fmaxf(", operand[0], ", ", operand[1], ")");
      case OpKind::Minimum:
        return strCat("fminf(", operand[0], ", ", operand[1], ")");
      case OpKind::Neg:
        return strCat("-(", operand[0], ")");
      case OpKind::Abs:
        return strCat("fabsf(", operand[0], ")");
      case OpKind::CompareGT:
        return strCat("(", operand[0], " > ", operand[1],
                      ") ? 1.0f : 0.0f");
      case OpKind::Select:
        return strCat("(", operand[0], " != 0.0f) ? ", operand[1],
                      " : ", operand[2]);
      case OpKind::Tanh:
        return strCat("tanhf(", operand[0], ")");
      case OpKind::Exp:
        return strCat("__expf(", operand[0], ")");
      case OpKind::Log:
        return strCat("__logf(", operand[0], ")");
      case OpKind::Power:
        return strCat("powf(", operand[0], ", ",
                      strFixed(node.attrs().exponent, 1), "f)");
      case OpKind::Sqrt:
        return strCat("sqrtf(", operand[0], ")");
      case OpKind::Rsqrt:
        return strCat("rsqrtf(", operand[0], ")");
      case OpKind::Sigmoid:
        return strCat("1.0f / (1.0f + __expf(-(", operand[0], ")))");
      case OpKind::Erf:
        return strCat("erff(", operand[0], ")");
      // A concat reads through every source: each operand covers one
      // contiguous element range of the result.
      case OpKind::Concat: {
        if (operand.size() == 1)
            return operand[0];
        std::string expr = operand.back();
        std::int64_t prefix = 0;
        for (std::size_t k = 0; k + 1 < operand.size(); ++k)
            prefix += graph.node(node.operands()[k]).shape().numElements();
        for (std::size_t k = operand.size() - 1; k-- > 0;) {
            expr = strCat("(elem < ", prefix, ") ? ", operand[k], " : (",
                          expr, ")");
            prefix -=
                graph.node(node.operands()[k]).shape().numElements();
        }
        return expr;
      }
      // Data movement reads through an index remap; the value itself is
      // the operand.
      case OpKind::Broadcast:
      case OpKind::Reshape:
      case OpKind::Transpose:
      case OpKind::Slice:
      case OpKind::Pad:
      case OpKind::Gather:
        return operand[0];
      default:
        panic("elementExpr on non-elementwise op ", node.name());
    }
}

/** Writer with indentation. */
class SourceWriter
{
  public:
    void
    line(const std::string &text = "")
    {
        if (!text.empty())
            oss_ << std::string(indent_ * 4, ' ') << text;
        oss_ << '\n';
    }

    void push() { ++indent_; }
    void pop() { --indent_; }

    std::string str() const { return oss_.str(); }

  private:
    std::ostringstream oss_;
    int indent_ = 0;
};

/** The classic lock-free inter-block barrier (Xiao & Feng). */
void
emitGridBarrierHelper(SourceWriter &w)
{
    w.line("// Lock-free inter-block barrier [Xiao & Feng, IPDPS'10].");
    w.line("// Legal only when gridDim.x <= blocks-per-wave (Sec 3.2.3);");
    w.line("// the launch configurator guarantees that bound.");
    w.line("__device__ void");
    w.line("grid_barrier(volatile int *arrive, volatile int *depart)");
    w.line("{");
    w.push();
    w.line("__syncthreads();");
    w.line("if (threadIdx.x == 0) {");
    w.push();
    w.line("atomicAdd((int *)arrive, 1);");
    w.line("if (blockIdx.x == 0) {");
    w.push();
    w.line("while (*arrive < gridDim.x) { }");
    w.line("*depart = gridDim.x;");
    w.pop();
    w.line("}");
    w.line("while (*depart < gridDim.x) { }");
    w.pop();
    w.line("}");
    w.line("__syncthreads();");
    w.pop();
    w.line("}");
}

/** The host-side documentation launch statement for @p plan. */
std::string
makeLaunchStub(const KernelPlan &plan)
{
    std::ostringstream stub;
    stub << plan.name << "<<<" << plan.launch.grid << ", "
         << plan.launch.block << ", " << plan.smem_per_block
         << ">>>(...); // -maxrregcount=" << plan.regs_per_thread;
    return stub.str();
}

} // namespace

CudaEmission
renderStitchKernelCuda(const Graph &graph, const Cluster &cluster,
                       const GpuSpec &spec, const KernelPlan &plan,
                       const DominantAnalysis &analysis,
                       const std::vector<GroupSchedule> &schedules,
                       const MemoryPlan &memory, const LaunchConfig &launch,
                       const std::vector<ShapeDim> &shape_params)
{
    CudaEmission emission;
    emission.kernel_name = plan.name;

    SourceWriter w;
    w.line(strCat("// Generated by AStitch stitch codegen for cluster "
                  "of ",
                  cluster.nodes.size(), " ops."));
    w.line(strCat("// Device: ", spec.name, "; wave capacity ",
                  launch.blocks_per_wave, " blocks."));
    w.line("#include <cuda_runtime.h>");
    w.line();
    if (plan.num_global_barriers > 0) {
        emitGridBarrierHelper(w);
        w.line();
    }

    // ---- Access summary: the structured per-op index expressions the
    // kernel-access verifier checked this emission against. ----
    if (!plan.accesses.empty()) {
        w.line(strCat("// access summary (", plan.accesses.size(),
                      " entries; index = offset + c_b*b + c_t*t + "
                      "c_i*i + c_th*th):"));
        for (const OpAccess &access : plan.accesses)
            w.line(strCat("//   op", access.op_index, ": ",
                          access.toString()));
        w.line();
    }

    // ---- Symbolic access summary + shape certificate: the
    // shape-parametric twins and the range verdict the parametric
    // verifier attached when dynamic dims were declared. ----
    if (!plan.sym_accesses.empty()) {
        const std::vector<ShapeDim> &dims =
            plan.certificate.dims.empty() ? shape_params
                                          : plan.certificate.dims;
        w.line(strCat("// symbolic access summary (", plan.sym_accesses.size(),
                      " of ", plan.accesses.size(),
                      " accesses have linear shape forms):"));
        for (const SymbolicAccess &sym : plan.sym_accesses)
            w.line(strCat("//   ", sym.toString(dims)));
        if (plan.certificate.verdict != ShapeCertificate::Verdict::None) {
            for (const std::string &line :
                 strSplit(plan.certificate.toString(), '\n'))
                w.line(strCat("// ", line));
        }
        w.line();
    }

    // ---- Signature. ----
    std::vector<std::string> params;
    for (const KernelInput &in : plan.inputs) {
        params.push_back(strCat("const float *__restrict__ ",
                                valueName(graph, in.node)));
    }
    for (NodeId out : plan.outputs) {
        params.push_back(strCat("float *__restrict__ ",
                                valueName(graph, out), "_out"));
    }
    if (memory.global_scratch_bytes > 0)
        params.push_back("float *__restrict__ global_scratch");
    if (plan.num_global_barriers > 0)
        params.push_back("int *barrier_state");

    w.line(strCat("extern \"C\" __global__ void"));
    w.line(strCat("__launch_bounds__(", plan.launch.block, ", ",
                  std::max(1, static_cast<int>(
                                  launch.blocks_per_wave /
                                  std::max(1, spec.num_sms))),
                  ") // regs/thread bound (assume-relax-apply): ",
                  plan.regs_per_thread));
    w.line(strCat(plan.name, "(", strJoin(params, ", "), ")"));
    w.line("{");
    w.push();

    // ---- Shared-memory arena. ----
    if (plan.smem_per_block > 0) {
        w.line(strCat("__shared__ float smem[",
                      (plan.smem_per_block + 3) / 4,
                      "]; // planner: ", plan.smem_per_block,
                      " B/block after liveness reuse"));
    }

    // Scheme per node for quick lookup.
    const SchemeMap &schemes = memory.schemes;

    // Plan-side structure this emission implements: op positions, the
    // planner's arena slots, and the structural barrier schedule. Every
    // barrier below is emitted from plan.barriers (each point once,
    // even when dominant merging is off and an op renders in several
    // groups), so the text and the metadata agree by construction —
    // and the emitted-source analyzer can hold them to that.
    std::map<NodeId, int> op_pos;
    for (std::size_t i = 0; i < plan.ops.size(); ++i)
        op_pos.emplace(plan.ops[i].node, static_cast<int>(i));
    const auto slot_of = [&](NodeId id) -> const SharedSlot * {
        for (const SharedSlot &slot : plan.shared_slots) {
            if (slot.node == id)
                return &slot;
        }
        return nullptr;
    };
    std::set<std::size_t> barriers_done;
    int device_barriers_emitted = 0;
    std::int64_t scratch_offset = 0;

    // ---- Emit groups in dominant order. ----
    std::vector<int> order(analysis.groups.size());
    for (std::size_t g = 0; g < order.size(); ++g)
        order[g] = static_cast<int>(g);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return analysis.groups[a].dominant <
               analysis.groups[b].dominant;
    });

    for (int g : order) {
        const DominantGroup &group = analysis.groups[g];
        const GroupSchedule &sched = schedules[g];
        const Node &dom = graph.node(group.dominant);

        // Pending device-wide barriers in this group: their task loop
        // must trip the same number of times in every block (the
        // inter-block barrier deadlocks otherwise), so its bound is
        // padded up to a multiple of the physical grid and the
        // per-task work — but not the barrier — is guarded.
        const auto pending_device_barrier = [&](NodeId id) {
            const auto p = op_pos.find(id);
            if (p == op_pos.end())
                return false;
            for (std::size_t b = 0; b < plan.barriers.size(); ++b) {
                if (plan.barriers[b].after_op == p->second &&
                    plan.barriers[b].scope == BarrierScope::Device &&
                    !barriers_done.count(b)) {
                    return true;
                }
            }
            return false;
        };
        bool group_has_device_barrier = false;
        for (NodeId id : group.members)
            group_has_device_barrier |= pending_device_barrier(id);

        const std::int64_t tasks =
            std::max<std::int64_t>(1, sched.mapping.tasks_per_block);
        const std::int64_t extent = sched.mapping.launch.grid * tasks;
        const std::int64_t grid =
            std::max<std::int64_t>(1, plan.launch.grid);
        const bool padded =
            group_has_device_barrier && extent % grid != 0;
        const std::int64_t bound =
            padded ? (extent + grid - 1) / grid * grid : extent;

        w.line();
        w.line(strCat("// ---- group ", g, ": dominant ", dom.name(),
                      ", logical launch ",
                      sched.mapping.launch.toString(),
                      sched.proactively_adapted
                          ? " (proactively adapted)"
                          : "",
                      " ----"));

        // Vertical packing: each physical block walks its logical tasks.
        w.line(strCat("for (long task = blockIdx.x; task < ", bound,
                      "; task += gridDim.x) { // vertical packing x",
                      tasks,
                      padded ? ", padded for uniform barrier trips"
                             : ""));
        w.push();
        bool guard_open = false;
        const auto open_guard = [&] {
            if (padded && !guard_open) {
                w.line(strCat("if (task < ", extent,
                              ") { // logical task extent"));
                w.push();
                guard_open = true;
            }
        };
        const auto close_guard = [&] {
            if (guard_open) {
                w.pop();
                w.line("}");
                guard_open = false;
            }
        };
        open_guard();
        w.line("const long elem = task * blockDim.x + threadIdx.x;");
        w.line("(void)elem;");

        for (NodeId id : group.members) {
            const Node &node = graph.node(id);
            const std::string value = valueName(graph, id);
            std::vector<std::string> operands;
            for (NodeId op : node.operands()) {
                std::string ref = valueName(graph, op);
                if (!cluster.contains(op)) {
                    // Kernel input: a coalesced global load.
                    ref = strCat(ref, "[elem]");
                }
                // A producer that is itself a kernel output is
                // materialized to its _out buffer, not staged through
                // the scheme buffers — consumers keep the live register
                // (Local reuse), matching the plan's access summaries.
                const bool op_is_output =
                    std::find(plan.outputs.begin(), plan.outputs.end(),
                              op) != plan.outputs.end();
                const auto scheme = schemes.find(op);
                if (scheme != schemes.end() && !op_is_output) {
                    if (scheme->second == StitchScheme::Regional)
                        ref = strCat(ref, "_smem[threadIdx.x % ",
                                     std::max<std::int64_t>(
                                         1, sched.mapping.rows_per_block),
                                     "]");
                    else if (scheme->second == StitchScheme::Global)
                        ref = strCat(ref, "_g[task]");
                }
                operands.push_back(ref);
            }

            open_guard();
            if (node.kind() == OpKind::Gather &&
                node.operands().size() >= 2) {
                // A gather reads through its index tensor:
                // out[e] = table[(long)indices[e]].
                w.line(strCat("const long ", value, "_idx = (long)",
                              operands[1], "; // gather indices"));
                const NodeId table = node.operands()[0];
                std::string table_ref = operands[0];
                if (!cluster.contains(table) &&
                    schemes.find(table) == schemes.end()) {
                    table_ref = strCat(valueName(graph, table), "[",
                                       value, "_idx]");
                }
                w.line(strCat("float ", value, " = ", table_ref, ";"));
            } else if (isReduce(node.kind())) {
                const ReduceInfo info = analyzeReduce(graph, id);
                const char *combine =
                    node.kind() == OpKind::ReduceMax   ? "fmaxf(acc, x)"
                    : node.kind() == OpKind::ReduceMin ? "fminf(acc, x)"
                                                       : "acc + x";
                const char *init =
                    node.kind() == OpKind::ReduceMax   ? "-INFINITY"
                    : node.kind() == OpKind::ReduceMin ? "INFINITY"
                                                       : "0.0f";
                w.line(strCat("// ", node.name(), ": ",
                              info.is_row_reduce ? "row" : "column",
                              "-reduce <", info.rows, ",", info.cols,
                              ">, ", sched.mapping.rows_per_block,
                              " row(s)/block",
                              sched.mapping.split_factor > 1
                                  ? strCat(", split x",
                                           sched.mapping.split_factor)
                                  : ""));
                w.line(strCat("float ", value, " = ", init, ";"));
                w.line(strCat("for (long c = threadIdx.x; c < ",
                              info.cols, "; c += blockDim.x) {"));
                w.push();
                w.line(strCat("float acc = ", value, ", x = ",
                              operands[0], ";"));
                w.line(strCat(value, " = ", combine, ";"));
                w.pop();
                w.line("}");
                w.line(strCat(value, " = blockReduce(", value,
                              ", smem); // tree reduce, 2 sync phases"));
                if (node.kind() == OpKind::ReduceMean) {
                    w.line(strCat(value, " /= ", info.cols, ".0f;"));
                }
                if (sched.mapping.uses_atomics) {
                    w.line(strCat("atomicAdd(&", value,
                                  "_partial[task], ", value,
                                  "); // cross-block finalize"));
                }
            } else if (!isSource(node.kind())) {
                w.line(strCat("float ", value, " = ",
                              elementExpr(graph, node, operands), ";"));
            }

            // Buffer the result per its stitching scheme.
            const auto scheme = schemes.find(id);
            const bool is_output =
                std::find(plan.outputs.begin(), plan.outputs.end(),
                          id) != plan.outputs.end();
            if (is_output) {
                w.line(strCat(value, "_out[task * blockDim.x + "
                              "threadIdx.x] = ",
                              value, ";"));
            } else if (scheme != schemes.end()) {
                if (scheme->second == StitchScheme::Regional) {
                    const SharedSlot *slot = slot_of(id);
                    const std::int64_t offset_words =
                        slot ? slot->offset_bytes / 4 : 0;
                    const std::int64_t words =
                        slot ? std::max<std::int64_t>(
                                   1, slot->size_bytes / 4)
                             : 1;
                    w.line(strCat("float *", value, "_smem = smem + ",
                                  offset_words,
                                  "; // regional buffer, planner slot, ",
                                  words, " floats/block"));
                    w.line(strCat(value, "_smem[threadIdx.x % ", words,
                                  "] = ", value, ";"));
                } else if (scheme->second == StitchScheme::Global) {
                    w.line(strCat("float *", value,
                                  "_g = global_scratch + ",
                                  scratch_offset, ";"));
                    w.line(strCat(value, "_g[task * blockDim.x + "
                                  "threadIdx.x] = ",
                                  value, ";"));
                    scratch_offset += node.shape().numElements();
                }
            }

            // ---- Barriers the plan schedules after this op: regional
            // boundaries, arena-reuse separators, and device-wide
            // global-stitch boundaries (emitted outside the padding
            // guard so every block reaches them uniformly). ----
            const auto pos_it = op_pos.find(id);
            if (pos_it == op_pos.end())
                continue;
            for (std::size_t b = 0; b < plan.barriers.size(); ++b) {
                const BarrierPoint &point = plan.barriers[b];
                if (point.after_op != pos_it->second ||
                    barriers_done.count(b)) {
                    continue;
                }
                barriers_done.insert(b);
                if (point.scope == BarrierScope::Block) {
                    const bool own_store =
                        plan.ops[pos_it->second].out_space ==
                        BufferSpace::Shared;
                    w.line(own_store
                               ? "__syncthreads(); // regional boundary"
                               : "__syncthreads(); // arena reuse "
                                 "separator");
                } else {
                    close_guard();
                    w.line(strCat(
                        "grid_barrier(barrier_state + ",
                        2 * device_barriers_emitted,
                        ", barrier_state + ",
                        2 * device_barriers_emitted + 1,
                        "); // global scheme boundary"));
                    ++device_barriers_emitted;
                }
            }
        }
        close_guard();
        w.pop();
        w.line("}");
    }

    w.pop();
    w.line("}");
    emission.source = w.str();
    emission.launch_stub = makeLaunchStub(plan);
    return emission;
}

CudaEmission
emitStitchKernelCuda(const Graph &graph, const Cluster &cluster,
                     const GpuSpec &spec, const AStitchOptions &options)
{
    StitchDiagnostics diag;
    const CompiledCluster compiled =
        compileStitchOp(graph, cluster, spec, options, &diag);
    panicIf(compiled.kernels.size() != 1,
            "stitch emission expects one kernel per cluster");
    const KernelPlan &plan = compiled.kernels[0];

    CudaEmission emission;
    emission.kernel_name = plan.name;
    emission.source = plan.cuda_source;
    emission.launch_stub = makeLaunchStub(plan);
    return emission;
}

} // namespace astitch
