/**
 * @file
 * Passive block-locality checking (Sec 4.3 Step 3).
 *
 * Every dominant and sub-dominant output must be buffered for its
 * consumers: in shared memory (Regional) when the producing block and the
 * consuming block are the same — i.e. the producer and all consumer
 * groups share the same thread-mapping partitioning — and in global
 * memory (Global) otherwise. Split/atomic-finalized reductions always
 * fall to Global, since their result is only complete after a cross-block
 * synchronization.
 */
#ifndef ASTITCH_CORE_LOCALITY_CHECK_H
#define ASTITCH_CORE_LOCALITY_CHECK_H

#include <unordered_map>

#include "core/schedule_propagation.h"
#include "core/stitch_scheme.h"

namespace astitch {

/** Scheme decision per dominant / sub-dominant node. */
using SchemeMap = std::unordered_map<NodeId, StitchScheme>;

/**
 * Decide Regional vs Global for every scheme-boundary node by comparing
 * the producing group's mapping with each consuming group's mapping.
 */
SchemeMap finalizeSchemes(const Graph &graph, const Cluster &cluster,
                          const DominantAnalysis &analysis,
                          const std::vector<GroupSchedule> &schedules);

} // namespace astitch

#endif // ASTITCH_CORE_LOCALITY_CHECK_H
