/**
 * @file
 * The operator-stitching scheme abstraction (Table 1 of the paper).
 *
 * Four schemes cover every dependency scenario under the joint
 * consideration of dependency, memory hierarchy and parallelism:
 *
 *   Independent — no dependency, no buffering requirement;
 *   Local       — one-to-one element dependency, per-thread registers;
 *   Regional    — one-to-many dependency, shared memory, block locality
 *                 first (CAT locality);
 *   Global      — any dependency, global memory scratch + in-kernel
 *                 device-wide barrier, parallelism first.
 */
#ifndef ASTITCH_CORE_STITCH_SCHEME_H
#define ASTITCH_CORE_STITCH_SCHEME_H

#include <string>

#include "compiler/kernel_plan.h"

namespace astitch {

/** The four stitching schemes. */
enum class StitchScheme {
    Independent,
    Local,
    Regional,
    Global,
};

/** Printable name. */
std::string stitchSchemeName(StitchScheme scheme);

/** The buffer space a scheme stores its intermediate in. */
BufferSpace schemeBufferSpace(StitchScheme scheme);

} // namespace astitch

#endif // ASTITCH_CORE_STITCH_SCHEME_H
