/**
 * @file
 * The AStitch backend: the paper's primary contribution as a Backend.
 *
 * Remote stitching is requested from the session, then each stitched
 * cluster compiles into exactly one kernel via compileStitchOp(). The
 * ablation configurations of Table 4 are exposed through AStitchOptions:
 *
 *   - atmOnly():       XLA fusion scopes + adaptive thread mapping (ATM)
 *   - withoutMerging():  full stitching, no dominant merging (HDM)
 *   - (default):       complete AStitch
 */
#ifndef ASTITCH_CORE_ASTITCH_BACKEND_H
#define ASTITCH_CORE_ASTITCH_BACKEND_H

#include "compiler/backend.h"
#include "core/stitch_codegen.h"

namespace astitch {

/** AStitch as a pluggable backend. */
class AStitchBackend : public Backend
{
  public:
    explicit AStitchBackend(AStitchOptions options = {});

    std::string name() const override;
    bool wantsRemoteStitching() const override;

    CompiledCluster compileCluster(const Graph &graph,
                                   const Cluster &cluster,
                                   const GpuSpec &spec) const override;

    const AStitchOptions &options() const { return options_; }

    /** Table 4 "ATM": XLA scopes with adaptive thread mapping only. */
    static AStitchOptions atmOnly();

    /** Table 4 "HDM": exhaustive stitching without dominant merging. */
    static AStitchOptions withoutMerging();

  private:
    AStitchOptions options_;
};

} // namespace astitch

#endif // ASTITCH_CORE_ASTITCH_BACKEND_H
