/**
 * @file
 * Memory usage optimization (Sec 4.4).
 *
 * Regional buffers live in shared memory; the planner sizes them per
 * block, reuses slots by liveness (a dominance/last-use analysis over the
 * schedule order), and — when the per-block budget is exceeded — demotes
 * Regional boundaries to Global one by one until the usage fits. Global
 * scratch tensors are likewise liveness-packed and the peak footprint
 * reported.
 */
#ifndef ASTITCH_CORE_MEMORY_PLANNER_H
#define ASTITCH_CORE_MEMORY_PLANNER_H

#include <set>

#include "core/locality_check.h"

namespace astitch {

/** Result of shared/global memory planning for one stitch op. */
struct MemoryPlan
{
    /** Final schemes (input schemes possibly demoted Regional->Global). */
    SchemeMap schemes;

    /** Static shared memory per block after liveness reuse (bytes). */
    std::int64_t smem_per_block = 0;

    /**
     * Concrete shared-arena byte assignments for every Regional
     * intermediate with in-kernel consumers (first-fit over liveness
     * intervals; disjoint lifetimes may reuse the same bytes). Offsets
     * are absolute within the block's shared memory: the reduction
     * scratch slab occupies [0, scratch) and slots start after it.
     * The stitch sanitizer's lifetime-overlap check runs over these.
     */
    std::vector<SharedSlot> arena;

    /** Peak global scratch after liveness reuse (bytes). */
    std::int64_t global_scratch_bytes = 0;

    /** Boundaries demoted Regional->Global by the budget. */
    int num_demoted = 0;

    /**
     * Non-reduce boundaries whose regional buffer overflowed: instead of
     * spilling them to global memory, their (element-wise) values are
     * recomputed inside each consuming group — XLA-style per-element
     * rematerialization, which trades reads + instructions for the
     * write+read of a spill. Reductions can never be rematerialized
     * (pattern (1)): they demote to Global instead.
     */
    std::set<NodeId> rematerialized;
};

/**
 * Plan buffer placement. @p smem_budget <= 0 uses the device's per-block
 * shared-memory limit.
 */
MemoryPlan planMemory(const Graph &graph, const Cluster &cluster,
                      const DominantAnalysis &analysis,
                      const std::vector<GroupSchedule> &schedules,
                      SchemeMap schemes, const GpuSpec &spec,
                      std::int64_t smem_budget = 0);

} // namespace astitch

#endif // ASTITCH_CORE_MEMORY_PLANNER_H
