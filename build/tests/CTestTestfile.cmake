# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/loop_fusion_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/cuda_emitter_test[1]_include.cmake")
include("/root/repo/build/tests/jit_cache_test[1]_include.cmake")
include("/root/repo/build/tests/data_movement_ops_test[1]_include.cmake")
include("/root/repo/build/tests/plan_validator_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_and_trace_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workload_structure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_property_test[1]_include.cmake")
