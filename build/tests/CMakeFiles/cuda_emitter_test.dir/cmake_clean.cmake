file(REMOVE_RECURSE
  "CMakeFiles/cuda_emitter_test.dir/cuda_emitter_test.cc.o"
  "CMakeFiles/cuda_emitter_test.dir/cuda_emitter_test.cc.o.d"
  "cuda_emitter_test"
  "cuda_emitter_test.pdb"
  "cuda_emitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda_emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
