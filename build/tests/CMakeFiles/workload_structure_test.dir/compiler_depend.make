# Empty compiler generated dependencies file for workload_structure_test.
# This may be replaced when dependencies are built.
