file(REMOVE_RECURSE
  "CMakeFiles/loop_fusion_test.dir/loop_fusion_test.cc.o"
  "CMakeFiles/loop_fusion_test.dir/loop_fusion_test.cc.o.d"
  "loop_fusion_test"
  "loop_fusion_test.pdb"
  "loop_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
