# Empty dependencies file for data_movement_ops_test.
# This may be replaced when dependencies are built.
