file(REMOVE_RECURSE
  "CMakeFiles/data_movement_ops_test.dir/data_movement_ops_test.cc.o"
  "CMakeFiles/data_movement_ops_test.dir/data_movement_ops_test.cc.o.d"
  "data_movement_ops_test"
  "data_movement_ops_test.pdb"
  "data_movement_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_movement_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
