file(REMOVE_RECURSE
  "CMakeFiles/plan_validator_test.dir/plan_validator_test.cc.o"
  "CMakeFiles/plan_validator_test.dir/plan_validator_test.cc.o.d"
  "plan_validator_test"
  "plan_validator_test.pdb"
  "plan_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
