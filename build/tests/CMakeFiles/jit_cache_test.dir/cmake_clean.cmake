file(REMOVE_RECURSE
  "CMakeFiles/jit_cache_test.dir/jit_cache_test.cc.o"
  "CMakeFiles/jit_cache_test.dir/jit_cache_test.cc.o.d"
  "jit_cache_test"
  "jit_cache_test.pdb"
  "jit_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
