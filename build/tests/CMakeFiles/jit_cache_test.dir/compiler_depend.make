# Empty compiler generated dependencies file for jit_cache_test.
# This may be replaced when dependencies are built.
