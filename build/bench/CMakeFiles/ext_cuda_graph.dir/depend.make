# Empty dependencies file for ext_cuda_graph.
# This may be replaced when dependencies are built.
