file(REMOVE_RECURSE
  "CMakeFiles/ext_cuda_graph.dir/ext_cuda_graph.cc.o"
  "CMakeFiles/ext_cuda_graph.dir/ext_cuda_graph.cc.o.d"
  "ext_cuda_graph"
  "ext_cuda_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cuda_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
