# Empty dependencies file for fig07_kernel_formation.
# This may be replaced when dependencies are built.
