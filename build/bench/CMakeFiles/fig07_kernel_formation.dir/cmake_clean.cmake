file(REMOVE_RECURSE
  "CMakeFiles/fig07_kernel_formation.dir/fig07_kernel_formation.cc.o"
  "CMakeFiles/fig07_kernel_formation.dir/fig07_kernel_formation.cc.o.d"
  "fig07_kernel_formation"
  "fig07_kernel_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_kernel_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
