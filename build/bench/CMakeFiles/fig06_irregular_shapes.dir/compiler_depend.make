# Empty compiler generated dependencies file for fig06_irregular_shapes.
# This may be replaced when dependencies are built.
