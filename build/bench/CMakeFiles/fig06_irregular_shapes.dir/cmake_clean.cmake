file(REMOVE_RECURSE
  "CMakeFiles/fig06_irregular_shapes.dir/fig06_irregular_shapes.cc.o"
  "CMakeFiles/fig06_irregular_shapes.dir/fig06_irregular_shapes.cc.o.d"
  "fig06_irregular_shapes"
  "fig06_irregular_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_irregular_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
