# Empty dependencies file for fig01_memory_intensive_ratio.
# This may be replaced when dependencies are built.
