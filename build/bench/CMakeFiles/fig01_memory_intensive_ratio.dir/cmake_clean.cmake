file(REMOVE_RECURSE
  "CMakeFiles/fig01_memory_intensive_ratio.dir/fig01_memory_intensive_ratio.cc.o"
  "CMakeFiles/fig01_memory_intensive_ratio.dir/fig01_memory_intensive_ratio.cc.o.d"
  "fig01_memory_intensive_ratio"
  "fig01_memory_intensive_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_intensive_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
