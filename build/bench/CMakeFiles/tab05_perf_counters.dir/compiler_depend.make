# Empty compiler generated dependencies file for tab05_perf_counters.
# This may be replaced when dependencies are built.
