file(REMOVE_RECURSE
  "CMakeFiles/tab05_perf_counters.dir/tab05_perf_counters.cc.o"
  "CMakeFiles/tab05_perf_counters.dir/tab05_perf_counters.cc.o.d"
  "tab05_perf_counters"
  "tab05_perf_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_perf_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
