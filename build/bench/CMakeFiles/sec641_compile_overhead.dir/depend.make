# Empty dependencies file for sec641_compile_overhead.
# This may be replaced when dependencies are built.
