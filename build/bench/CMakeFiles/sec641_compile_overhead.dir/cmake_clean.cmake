file(REMOVE_RECURSE
  "CMakeFiles/sec641_compile_overhead.dir/sec641_compile_overhead.cc.o"
  "CMakeFiles/sec641_compile_overhead.dir/sec641_compile_overhead.cc.o.d"
  "sec641_compile_overhead"
  "sec641_compile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec641_compile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
