file(REMOVE_RECURSE
  "CMakeFiles/ext_scheme_distribution.dir/ext_scheme_distribution.cc.o"
  "CMakeFiles/ext_scheme_distribution.dir/ext_scheme_distribution.cc.o.d"
  "ext_scheme_distribution"
  "ext_scheme_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scheme_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
