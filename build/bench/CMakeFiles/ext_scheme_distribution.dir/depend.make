# Empty dependencies file for ext_scheme_distribution.
# This may be replaced when dependencies are built.
