file(REMOVE_RECURSE
  "CMakeFiles/ext_smem_budget.dir/ext_smem_budget.cc.o"
  "CMakeFiles/ext_smem_budget.dir/ext_smem_budget.cc.o.d"
  "ext_smem_budget"
  "ext_smem_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smem_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
