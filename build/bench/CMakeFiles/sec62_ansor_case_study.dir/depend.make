# Empty dependencies file for sec62_ansor_case_study.
# This may be replaced when dependencies are built.
