file(REMOVE_RECURSE
  "CMakeFiles/sec62_ansor_case_study.dir/sec62_ansor_case_study.cc.o"
  "CMakeFiles/sec62_ansor_case_study.dir/sec62_ansor_case_study.cc.o.d"
  "sec62_ansor_case_study"
  "sec62_ansor_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_ansor_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
