# Empty dependencies file for tab03_kernel_counts.
# This may be replaced when dependencies are built.
