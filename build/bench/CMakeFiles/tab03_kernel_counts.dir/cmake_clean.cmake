file(REMOVE_RECURSE
  "CMakeFiles/tab03_kernel_counts.dir/tab03_kernel_counts.cc.o"
  "CMakeFiles/tab03_kernel_counts.dir/tab03_kernel_counts.cc.o.d"
  "tab03_kernel_counts"
  "tab03_kernel_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_kernel_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
