file(REMOVE_RECURSE
  "CMakeFiles/fig11b_training_speedup.dir/fig11b_training_speedup.cc.o"
  "CMakeFiles/fig11b_training_speedup.dir/fig11b_training_speedup.cc.o.d"
  "fig11b_training_speedup"
  "fig11b_training_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_training_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
