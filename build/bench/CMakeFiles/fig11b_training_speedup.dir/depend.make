# Empty dependencies file for fig11b_training_speedup.
# This may be replaced when dependencies are built.
