# Empty dependencies file for fig12_amp_inference.
# This may be replaced when dependencies are built.
