file(REMOVE_RECURSE
  "CMakeFiles/fig12_amp_inference.dir/fig12_amp_inference.cc.o"
  "CMakeFiles/fig12_amp_inference.dir/fig12_amp_inference.cc.o.d"
  "fig12_amp_inference"
  "fig12_amp_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_amp_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
