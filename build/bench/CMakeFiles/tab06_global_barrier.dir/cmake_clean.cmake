file(REMOVE_RECURSE
  "CMakeFiles/tab06_global_barrier.dir/tab06_global_barrier.cc.o"
  "CMakeFiles/tab06_global_barrier.dir/tab06_global_barrier.cc.o.d"
  "tab06_global_barrier"
  "tab06_global_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_global_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
