# Empty compiler generated dependencies file for tab06_global_barrier.
# This may be replaced when dependencies are built.
