
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11a_inference_speedup.cc" "bench/CMakeFiles/fig11a_inference_speedup.dir/fig11a_inference_speedup.cc.o" "gcc" "bench/CMakeFiles/fig11a_inference_speedup.dir/fig11a_inference_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
