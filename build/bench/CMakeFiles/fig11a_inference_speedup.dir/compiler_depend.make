# Empty compiler generated dependencies file for fig11a_inference_speedup.
# This may be replaced when dependencies are built.
