file(REMOVE_RECURSE
  "CMakeFiles/fig11a_inference_speedup.dir/fig11a_inference_speedup.cc.o"
  "CMakeFiles/fig11a_inference_speedup.dir/fig11a_inference_speedup.cc.o.d"
  "fig11a_inference_speedup"
  "fig11a_inference_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_inference_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
