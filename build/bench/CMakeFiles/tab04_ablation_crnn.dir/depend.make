# Empty dependencies file for tab04_ablation_crnn.
# This may be replaced when dependencies are built.
