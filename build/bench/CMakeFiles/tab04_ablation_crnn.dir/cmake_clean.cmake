file(REMOVE_RECURSE
  "CMakeFiles/tab04_ablation_crnn.dir/tab04_ablation_crnn.cc.o"
  "CMakeFiles/tab04_ablation_crnn.dir/tab04_ablation_crnn.cc.o.d"
  "tab04_ablation_crnn"
  "tab04_ablation_crnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_ablation_crnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
