file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_occupancy_trend.dir/fig15_16_occupancy_trend.cc.o"
  "CMakeFiles/fig15_16_occupancy_trend.dir/fig15_16_occupancy_trend.cc.o.d"
  "fig15_16_occupancy_trend"
  "fig15_16_occupancy_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_occupancy_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
