# Empty compiler generated dependencies file for fig15_16_occupancy_trend.
# This may be replaced when dependencies are built.
