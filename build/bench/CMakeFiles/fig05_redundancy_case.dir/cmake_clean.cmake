file(REMOVE_RECURSE
  "CMakeFiles/fig05_redundancy_case.dir/fig05_redundancy_case.cc.o"
  "CMakeFiles/fig05_redundancy_case.dir/fig05_redundancy_case.cc.o.d"
  "fig05_redundancy_case"
  "fig05_redundancy_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_redundancy_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
