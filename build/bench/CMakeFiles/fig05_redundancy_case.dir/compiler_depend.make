# Empty compiler generated dependencies file for fig05_redundancy_case.
# This may be replaced when dependencies are built.
