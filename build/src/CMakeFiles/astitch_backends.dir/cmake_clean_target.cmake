file(REMOVE_RECURSE
  "libastitch_backends.a"
)
