file(REMOVE_RECURSE
  "CMakeFiles/astitch_backends.dir/backends/tf/cuda_graph_backend.cc.o"
  "CMakeFiles/astitch_backends.dir/backends/tf/cuda_graph_backend.cc.o.d"
  "CMakeFiles/astitch_backends.dir/backends/tf/tf_backend.cc.o"
  "CMakeFiles/astitch_backends.dir/backends/tf/tf_backend.cc.o.d"
  "CMakeFiles/astitch_backends.dir/backends/trt/trt_backend.cc.o"
  "CMakeFiles/astitch_backends.dir/backends/trt/trt_backend.cc.o.d"
  "CMakeFiles/astitch_backends.dir/backends/tvm/tvm_backend.cc.o"
  "CMakeFiles/astitch_backends.dir/backends/tvm/tvm_backend.cc.o.d"
  "CMakeFiles/astitch_backends.dir/backends/xla/xla_backend.cc.o"
  "CMakeFiles/astitch_backends.dir/backends/xla/xla_backend.cc.o.d"
  "libastitch_backends.a"
  "libastitch_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
