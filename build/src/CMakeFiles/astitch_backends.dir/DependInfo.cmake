
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/tf/cuda_graph_backend.cc" "src/CMakeFiles/astitch_backends.dir/backends/tf/cuda_graph_backend.cc.o" "gcc" "src/CMakeFiles/astitch_backends.dir/backends/tf/cuda_graph_backend.cc.o.d"
  "/root/repo/src/backends/tf/tf_backend.cc" "src/CMakeFiles/astitch_backends.dir/backends/tf/tf_backend.cc.o" "gcc" "src/CMakeFiles/astitch_backends.dir/backends/tf/tf_backend.cc.o.d"
  "/root/repo/src/backends/trt/trt_backend.cc" "src/CMakeFiles/astitch_backends.dir/backends/trt/trt_backend.cc.o" "gcc" "src/CMakeFiles/astitch_backends.dir/backends/trt/trt_backend.cc.o.d"
  "/root/repo/src/backends/tvm/tvm_backend.cc" "src/CMakeFiles/astitch_backends.dir/backends/tvm/tvm_backend.cc.o" "gcc" "src/CMakeFiles/astitch_backends.dir/backends/tvm/tvm_backend.cc.o.d"
  "/root/repo/src/backends/xla/xla_backend.cc" "src/CMakeFiles/astitch_backends.dir/backends/xla/xla_backend.cc.o" "gcc" "src/CMakeFiles/astitch_backends.dir/backends/xla/xla_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
