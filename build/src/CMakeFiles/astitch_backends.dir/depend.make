# Empty dependencies file for astitch_backends.
# This may be replaced when dependencies are built.
