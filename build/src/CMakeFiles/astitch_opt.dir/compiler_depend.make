# Empty compiler generated dependencies file for astitch_opt.
# This may be replaced when dependencies are built.
