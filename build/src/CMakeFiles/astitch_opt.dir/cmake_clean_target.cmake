file(REMOVE_RECURSE
  "libastitch_opt.a"
)
