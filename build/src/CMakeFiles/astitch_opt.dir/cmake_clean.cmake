file(REMOVE_RECURSE
  "CMakeFiles/astitch_opt.dir/opt/autodiff.cc.o"
  "CMakeFiles/astitch_opt.dir/opt/autodiff.cc.o.d"
  "CMakeFiles/astitch_opt.dir/opt/passes.cc.o"
  "CMakeFiles/astitch_opt.dir/opt/passes.cc.o.d"
  "CMakeFiles/astitch_opt.dir/opt/rewriter.cc.o"
  "CMakeFiles/astitch_opt.dir/opt/rewriter.cc.o.d"
  "libastitch_opt.a"
  "libastitch_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
