file(REMOVE_RECURSE
  "CMakeFiles/astitch_tensor.dir/tensor/dtype.cc.o"
  "CMakeFiles/astitch_tensor.dir/tensor/dtype.cc.o.d"
  "CMakeFiles/astitch_tensor.dir/tensor/reference_ops.cc.o"
  "CMakeFiles/astitch_tensor.dir/tensor/reference_ops.cc.o.d"
  "CMakeFiles/astitch_tensor.dir/tensor/shape.cc.o"
  "CMakeFiles/astitch_tensor.dir/tensor/shape.cc.o.d"
  "CMakeFiles/astitch_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/astitch_tensor.dir/tensor/tensor.cc.o.d"
  "libastitch_tensor.a"
  "libastitch_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
