# Empty dependencies file for astitch_tensor.
# This may be replaced when dependencies are built.
