file(REMOVE_RECURSE
  "libastitch_tensor.a"
)
