file(REMOVE_RECURSE
  "libastitch_sim.a"
)
