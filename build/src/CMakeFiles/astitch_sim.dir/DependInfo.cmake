
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/astitch_sim.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/gpu_spec.cc" "src/CMakeFiles/astitch_sim.dir/sim/gpu_spec.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/gpu_spec.cc.o.d"
  "/root/repo/src/sim/kernel_sim.cc" "src/CMakeFiles/astitch_sim.dir/sim/kernel_sim.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/kernel_sim.cc.o.d"
  "/root/repo/src/sim/launch_dims.cc" "src/CMakeFiles/astitch_sim.dir/sim/launch_dims.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/launch_dims.cc.o.d"
  "/root/repo/src/sim/occupancy.cc" "src/CMakeFiles/astitch_sim.dir/sim/occupancy.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/occupancy.cc.o.d"
  "/root/repo/src/sim/perf_counters.cc" "src/CMakeFiles/astitch_sim.dir/sim/perf_counters.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/perf_counters.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/astitch_sim.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/timeline.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "src/CMakeFiles/astitch_sim.dir/sim/trace_export.cc.o" "gcc" "src/CMakeFiles/astitch_sim.dir/sim/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
