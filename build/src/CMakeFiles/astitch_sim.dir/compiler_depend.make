# Empty compiler generated dependencies file for astitch_sim.
# This may be replaced when dependencies are built.
