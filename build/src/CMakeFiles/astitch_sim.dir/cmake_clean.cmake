file(REMOVE_RECURSE
  "CMakeFiles/astitch_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/gpu_spec.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/gpu_spec.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/kernel_sim.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/kernel_sim.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/launch_dims.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/launch_dims.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/occupancy.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/occupancy.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/perf_counters.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/perf_counters.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/timeline.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/timeline.cc.o.d"
  "CMakeFiles/astitch_sim.dir/sim/trace_export.cc.o"
  "CMakeFiles/astitch_sim.dir/sim/trace_export.cc.o.d"
  "libastitch_sim.a"
  "libastitch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
