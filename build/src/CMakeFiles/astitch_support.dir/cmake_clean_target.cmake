file(REMOVE_RECURSE
  "libastitch_support.a"
)
