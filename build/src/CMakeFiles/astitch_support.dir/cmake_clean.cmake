file(REMOVE_RECURSE
  "CMakeFiles/astitch_support.dir/support/logging.cc.o"
  "CMakeFiles/astitch_support.dir/support/logging.cc.o.d"
  "CMakeFiles/astitch_support.dir/support/rng.cc.o"
  "CMakeFiles/astitch_support.dir/support/rng.cc.o.d"
  "CMakeFiles/astitch_support.dir/support/strings.cc.o"
  "CMakeFiles/astitch_support.dir/support/strings.cc.o.d"
  "libastitch_support.a"
  "libastitch_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
