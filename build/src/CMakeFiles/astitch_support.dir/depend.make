# Empty dependencies file for astitch_support.
# This may be replaced when dependencies are built.
