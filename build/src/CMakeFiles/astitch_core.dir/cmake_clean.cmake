file(REMOVE_RECURSE
  "CMakeFiles/astitch_core.dir/core/adaptive_mapping.cc.o"
  "CMakeFiles/astitch_core.dir/core/adaptive_mapping.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/astitch_backend.cc.o"
  "CMakeFiles/astitch_core.dir/core/astitch_backend.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/cuda_emitter.cc.o"
  "CMakeFiles/astitch_core.dir/core/cuda_emitter.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/dominant_analysis.cc.o"
  "CMakeFiles/astitch_core.dir/core/dominant_analysis.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/launch_config.cc.o"
  "CMakeFiles/astitch_core.dir/core/launch_config.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/locality_check.cc.o"
  "CMakeFiles/astitch_core.dir/core/locality_check.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/memory_planner.cc.o"
  "CMakeFiles/astitch_core.dir/core/memory_planner.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/schedule_propagation.cc.o"
  "CMakeFiles/astitch_core.dir/core/schedule_propagation.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/stitch_codegen.cc.o"
  "CMakeFiles/astitch_core.dir/core/stitch_codegen.cc.o.d"
  "CMakeFiles/astitch_core.dir/core/stitch_scheme.cc.o"
  "CMakeFiles/astitch_core.dir/core/stitch_scheme.cc.o.d"
  "libastitch_core.a"
  "libastitch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
