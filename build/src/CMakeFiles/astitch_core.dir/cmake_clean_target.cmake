file(REMOVE_RECURSE
  "libastitch_core.a"
)
