
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_mapping.cc" "src/CMakeFiles/astitch_core.dir/core/adaptive_mapping.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/adaptive_mapping.cc.o.d"
  "/root/repo/src/core/astitch_backend.cc" "src/CMakeFiles/astitch_core.dir/core/astitch_backend.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/astitch_backend.cc.o.d"
  "/root/repo/src/core/cuda_emitter.cc" "src/CMakeFiles/astitch_core.dir/core/cuda_emitter.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/cuda_emitter.cc.o.d"
  "/root/repo/src/core/dominant_analysis.cc" "src/CMakeFiles/astitch_core.dir/core/dominant_analysis.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/dominant_analysis.cc.o.d"
  "/root/repo/src/core/launch_config.cc" "src/CMakeFiles/astitch_core.dir/core/launch_config.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/launch_config.cc.o.d"
  "/root/repo/src/core/locality_check.cc" "src/CMakeFiles/astitch_core.dir/core/locality_check.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/locality_check.cc.o.d"
  "/root/repo/src/core/memory_planner.cc" "src/CMakeFiles/astitch_core.dir/core/memory_planner.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/memory_planner.cc.o.d"
  "/root/repo/src/core/schedule_propagation.cc" "src/CMakeFiles/astitch_core.dir/core/schedule_propagation.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/schedule_propagation.cc.o.d"
  "/root/repo/src/core/stitch_codegen.cc" "src/CMakeFiles/astitch_core.dir/core/stitch_codegen.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/stitch_codegen.cc.o.d"
  "/root/repo/src/core/stitch_scheme.cc" "src/CMakeFiles/astitch_core.dir/core/stitch_scheme.cc.o" "gcc" "src/CMakeFiles/astitch_core.dir/core/stitch_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
