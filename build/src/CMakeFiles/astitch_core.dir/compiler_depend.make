# Empty compiler generated dependencies file for astitch_core.
# This may be replaced when dependencies are built.
