file(REMOVE_RECURSE
  "CMakeFiles/astitch_compiler.dir/compiler/backend.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/backend.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/clustering.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/clustering.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/evaluator.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/evaluator.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/kernel_plan.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/kernel_plan.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/loop_fusion.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/loop_fusion.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/patterns.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/patterns.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/plan_executor.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/plan_executor.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/plan_validator.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/plan_validator.cc.o.d"
  "CMakeFiles/astitch_compiler.dir/compiler/thread_mapping.cc.o"
  "CMakeFiles/astitch_compiler.dir/compiler/thread_mapping.cc.o.d"
  "libastitch_compiler.a"
  "libastitch_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
