
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/backend.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/backend.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/backend.cc.o.d"
  "/root/repo/src/compiler/clustering.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/clustering.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/clustering.cc.o.d"
  "/root/repo/src/compiler/evaluator.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/evaluator.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/evaluator.cc.o.d"
  "/root/repo/src/compiler/kernel_plan.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/kernel_plan.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/kernel_plan.cc.o.d"
  "/root/repo/src/compiler/loop_fusion.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/loop_fusion.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/loop_fusion.cc.o.d"
  "/root/repo/src/compiler/patterns.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/patterns.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/patterns.cc.o.d"
  "/root/repo/src/compiler/plan_executor.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/plan_executor.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/plan_executor.cc.o.d"
  "/root/repo/src/compiler/plan_validator.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/plan_validator.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/plan_validator.cc.o.d"
  "/root/repo/src/compiler/thread_mapping.cc" "src/CMakeFiles/astitch_compiler.dir/compiler/thread_mapping.cc.o" "gcc" "src/CMakeFiles/astitch_compiler.dir/compiler/thread_mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
