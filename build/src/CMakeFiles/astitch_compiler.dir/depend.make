# Empty dependencies file for astitch_compiler.
# This may be replaced when dependencies are built.
