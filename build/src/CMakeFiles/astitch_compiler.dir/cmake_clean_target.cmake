file(REMOVE_RECURSE
  "libastitch_compiler.a"
)
