file(REMOVE_RECURSE
  "CMakeFiles/astitch_graph.dir/graph/dot_export.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/dot_export.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/graph.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/node.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/node.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/op_kind.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/op_kind.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/shape_inference.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/shape_inference.cc.o.d"
  "CMakeFiles/astitch_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/astitch_graph.dir/graph/traversal.cc.o.d"
  "libastitch_graph.a"
  "libastitch_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
