
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot_export.cc" "src/CMakeFiles/astitch_graph.dir/graph/dot_export.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/dot_export.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/astitch_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/astitch_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/node.cc" "src/CMakeFiles/astitch_graph.dir/graph/node.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/node.cc.o.d"
  "/root/repo/src/graph/op_kind.cc" "src/CMakeFiles/astitch_graph.dir/graph/op_kind.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/op_kind.cc.o.d"
  "/root/repo/src/graph/shape_inference.cc" "src/CMakeFiles/astitch_graph.dir/graph/shape_inference.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/shape_inference.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/astitch_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/astitch_graph.dir/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
