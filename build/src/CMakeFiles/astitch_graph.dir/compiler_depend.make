# Empty compiler generated dependencies file for astitch_graph.
# This may be replaced when dependencies are built.
