file(REMOVE_RECURSE
  "libastitch_graph.a"
)
