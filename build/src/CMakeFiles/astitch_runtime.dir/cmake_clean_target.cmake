file(REMOVE_RECURSE
  "libastitch_runtime.a"
)
