file(REMOVE_RECURSE
  "CMakeFiles/astitch_runtime.dir/runtime/dynamic_session.cc.o"
  "CMakeFiles/astitch_runtime.dir/runtime/dynamic_session.cc.o.d"
  "CMakeFiles/astitch_runtime.dir/runtime/jit_cache.cc.o"
  "CMakeFiles/astitch_runtime.dir/runtime/jit_cache.cc.o.d"
  "CMakeFiles/astitch_runtime.dir/runtime/run_report.cc.o"
  "CMakeFiles/astitch_runtime.dir/runtime/run_report.cc.o.d"
  "CMakeFiles/astitch_runtime.dir/runtime/session.cc.o"
  "CMakeFiles/astitch_runtime.dir/runtime/session.cc.o.d"
  "libastitch_runtime.a"
  "libastitch_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
