# Empty dependencies file for astitch_runtime.
# This may be replaced when dependencies are built.
