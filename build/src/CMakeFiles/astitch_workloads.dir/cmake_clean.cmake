file(REMOVE_RECURSE
  "CMakeFiles/astitch_workloads.dir/workloads/asr.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/asr.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/bert.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/bert.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/common.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/common.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/crnn.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/crnn.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/dien.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/dien.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/random_graph.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/random_graph.cc.o.d"
  "CMakeFiles/astitch_workloads.dir/workloads/transformer.cc.o"
  "CMakeFiles/astitch_workloads.dir/workloads/transformer.cc.o.d"
  "libastitch_workloads.a"
  "libastitch_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
