# Empty compiler generated dependencies file for astitch_workloads.
# This may be replaced when dependencies are built.
