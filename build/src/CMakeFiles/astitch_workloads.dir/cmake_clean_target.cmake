file(REMOVE_RECURSE
  "libastitch_workloads.a"
)
