
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/asr.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/asr.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/asr.cc.o.d"
  "/root/repo/src/workloads/bert.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/bert.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/bert.cc.o.d"
  "/root/repo/src/workloads/common.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/common.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/common.cc.o.d"
  "/root/repo/src/workloads/crnn.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/crnn.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/crnn.cc.o.d"
  "/root/repo/src/workloads/dien.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/dien.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/dien.cc.o.d"
  "/root/repo/src/workloads/random_graph.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/random_graph.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/random_graph.cc.o.d"
  "/root/repo/src/workloads/transformer.cc" "src/CMakeFiles/astitch_workloads.dir/workloads/transformer.cc.o" "gcc" "src/CMakeFiles/astitch_workloads.dir/workloads/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/astitch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/astitch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
