file(REMOVE_RECURSE
  "CMakeFiles/training_loop.dir/training_loop.cpp.o"
  "CMakeFiles/training_loop.dir/training_loop.cpp.o.d"
  "training_loop"
  "training_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
