# Empty compiler generated dependencies file for training_loop.
# This may be replaced when dependencies are built.
