# Empty dependencies file for irregular_shapes.
# This may be replaced when dependencies are built.
