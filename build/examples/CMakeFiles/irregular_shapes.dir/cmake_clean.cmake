file(REMOVE_RECURSE
  "CMakeFiles/irregular_shapes.dir/irregular_shapes.cpp.o"
  "CMakeFiles/irregular_shapes.dir/irregular_shapes.cpp.o.d"
  "irregular_shapes"
  "irregular_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
