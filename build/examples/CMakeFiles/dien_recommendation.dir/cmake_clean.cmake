file(REMOVE_RECURSE
  "CMakeFiles/dien_recommendation.dir/dien_recommendation.cpp.o"
  "CMakeFiles/dien_recommendation.dir/dien_recommendation.cpp.o.d"
  "dien_recommendation"
  "dien_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dien_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
