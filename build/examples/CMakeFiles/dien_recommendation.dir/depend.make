# Empty dependencies file for dien_recommendation.
# This may be replaced when dependencies are built.
