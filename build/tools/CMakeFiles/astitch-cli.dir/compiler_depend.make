# Empty compiler generated dependencies file for astitch-cli.
# This may be replaced when dependencies are built.
