file(REMOVE_RECURSE
  "CMakeFiles/astitch-cli.dir/astitch_cli.cc.o"
  "CMakeFiles/astitch-cli.dir/astitch_cli.cc.o.d"
  "astitch-cli"
  "astitch-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astitch-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
