/**
 * @file
 * Unit tests for shapes, tensors and the reference operator kernels.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include <cmath>

#include "tensor/reference_ops.h"

namespace astitch {
namespace {

TEST(DType, Sizes)
{
    EXPECT_EQ(dtypeSizeBytes(DType::F32), 4);
    EXPECT_EQ(dtypeSizeBytes(DType::F16), 2);
    EXPECT_EQ(dtypeSizeBytes(DType::I32), 4);
    EXPECT_EQ(dtypeSizeBytes(DType::Pred), 1);
    EXPECT_EQ(dtypeName(DType::F16), "f16");
}

TEST(Shape, NumElementsAndRank)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numElements(), 24);
    EXPECT_FALSE(s.isScalar());
    EXPECT_TRUE(Shape{}.isScalar());
    EXPECT_EQ(Shape{}.numElements(), 1);
}

TEST(Shape, StridesAreRowMajor)
{
    Shape s{2, 3, 4};
    const auto strides = s.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 12);
    EXPECT_EQ(strides[1], 4);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, LinearizeDelinearizeRoundTrip)
{
    Shape s{3, 5, 7};
    for (std::int64_t i = 0; i < s.numElements(); ++i) {
        const auto index = s.delinearize(i);
        EXPECT_EQ(s.linearize(index), i);
    }
}

TEST(Shape, ReduceDims)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.reduceDims({1}), (Shape{2, 4}));
    EXPECT_EQ(s.reduceDims({0, 2}), (Shape{3}));
    EXPECT_EQ(s.reduceDims({0, 1, 2}), Shape{});
}

TEST(Shape, ReduceDimsRejectsDuplicates)
{
    Shape s{2, 3};
    EXPECT_THROW(s.reduceDims({1, 1}), FatalError);
    EXPECT_THROW(s.reduceDims({2}), FatalError);
}

TEST(Shape, BroadcastCompatible)
{
    EXPECT_EQ(Shape::broadcast({2, 1}, {2, 128}), (Shape{2, 128}));
    EXPECT_EQ(Shape::broadcast({}, {3, 4}), (Shape{3, 4}));
    EXPECT_EQ(Shape::broadcast({4}, {3, 4}), (Shape{3, 4}));
}

TEST(Shape, BroadcastIncompatibleThrows)
{
    EXPECT_THROW(Shape::broadcast({2, 3}, {2, 4}), FatalError);
}

TEST(Shape, BroadcastableTo)
{
    EXPECT_TRUE(Shape::broadcastableTo({2, 1}, {2, 128}));
    EXPECT_TRUE(Shape::broadcastableTo({}, {5}));
    EXPECT_FALSE(Shape::broadcastableTo({3}, {3, 4})); // not right-aligned
    EXPECT_TRUE(Shape::broadcastableTo({4}, {3, 4}));
}

TEST(Shape, ToString)
{
    EXPECT_EQ((Shape{2, 128}).toString(), "[2,128]");
    EXPECT_EQ(Shape{}.toString(), "[]");
}

TEST(Tensor, ConstructionAndFill)
{
    Tensor t = Tensor::full({2, 2}, 3.5f);
    EXPECT_EQ(t.numElements(), 4);
    EXPECT_EQ(t.sizeBytes(), 16);
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(t.at(i), 3.5f);
}

TEST(Tensor, F16HalvesBytes)
{
    Tensor t(Shape{8}, DType::F16);
    EXPECT_EQ(t.sizeBytes(), 16);
}

TEST(Tensor, IotaAndMultiIndex)
{
    Tensor t = Tensor::iota({2, 3});
    EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0f);
    EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
}

TEST(Tensor, DataSizeMismatchThrows)
{
    EXPECT_THROW(Tensor(Shape{3}, std::vector<float>{1, 2}), FatalError);
}

TEST(Tensor, AllCloseToleratesSmallError)
{
    Tensor a = Tensor::full({4}, 1.0f);
    Tensor b = Tensor::full({4}, 1.0f + 1e-7f);
    EXPECT_TRUE(a.allClose(b));
    Tensor c = Tensor::full({4}, 1.01f);
    EXPECT_FALSE(a.allClose(c));
}

TEST(Tensor, AllCloseShapeMismatch)
{
    EXPECT_FALSE(Tensor::full({4}, 1.0f)
                     .allClose(Tensor::full({2, 2}, 1.0f)));
}

TEST(RefOps, ElementwiseUnary)
{
    Tensor x(Shape{3}, {1.0f, 4.0f, 9.0f});
    Tensor y = ref::elementwiseUnary(x,
                                     [](float v) { return std::sqrt(v); });
    EXPECT_FLOAT_EQ(y.at(0), 1.0f);
    EXPECT_FLOAT_EQ(y.at(1), 2.0f);
    EXPECT_FLOAT_EQ(y.at(2), 3.0f);
}

TEST(RefOps, ElementwiseBinaryWithBroadcast)
{
    Tensor a(Shape{2, 1}, {10.0f, 20.0f});
    Tensor b(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor c = ref::elementwiseBinary(
        a, b, [](float x, float y) { return x + y; });
    EXPECT_EQ(c.shape(), (Shape{2, 3}));
    EXPECT_FLOAT_EQ(c.at({0, 2}), 13.0f);
    EXPECT_FLOAT_EQ(c.at({1, 0}), 24.0f);
}

TEST(RefOps, ScalarBroadcast)
{
    Tensor a = Tensor::scalar(2.0f);
    Tensor b = Tensor::iota({4});
    Tensor c = ref::elementwiseBinary(
        a, b, [](float x, float y) { return x * y; });
    EXPECT_FLOAT_EQ(c.at(3), 6.0f);
}

TEST(RefOps, Select)
{
    Tensor pred(Shape{3}, {1.0f, 0.0f, 1.0f});
    Tensor t = Tensor::full({3}, 5.0f);
    Tensor f = Tensor::full({3}, -5.0f);
    Tensor out = ref::select(pred, t, f);
    EXPECT_FLOAT_EQ(out.at(0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1), -5.0f);
    EXPECT_FLOAT_EQ(out.at(2), 5.0f);
}

TEST(RefOps, BroadcastToMaterializes)
{
    Tensor v(Shape{3}, {1, 2, 3});
    Tensor wide = ref::broadcastTo(v, Shape{2, 3});
    EXPECT_FLOAT_EQ(wide.at({0, 1}), 2.0f);
    EXPECT_FLOAT_EQ(wide.at({1, 2}), 3.0f);
}

TEST(RefOps, BroadcastToRejectsBadShape)
{
    Tensor v(Shape{3}, {1, 2, 3});
    EXPECT_THROW(ref::broadcastTo(v, Shape{3, 2}), FatalError);
}

TEST(RefOps, ReduceSumRows)
{
    Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = ref::reduce(x, {1}, ref::ReduceKind::Sum);
    EXPECT_EQ(r.shape(), (Shape{2}));
    EXPECT_FLOAT_EQ(r.at(0), 6.0f);
    EXPECT_FLOAT_EQ(r.at(1), 15.0f);
}

TEST(RefOps, ReduceSumColumns)
{
    Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = ref::reduce(x, {0}, ref::ReduceKind::Sum);
    EXPECT_EQ(r.shape(), (Shape{3}));
    EXPECT_FLOAT_EQ(r.at(0), 5.0f);
    EXPECT_FLOAT_EQ(r.at(2), 9.0f);
}

TEST(RefOps, ReduceMaxMinMean)
{
    Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_FLOAT_EQ(ref::reduce(x, {1}, ref::ReduceKind::Max).at(1), 6.0f);
    EXPECT_FLOAT_EQ(ref::reduce(x, {1}, ref::ReduceKind::Min).at(0), 1.0f);
    EXPECT_FLOAT_EQ(ref::reduce(x, {1}, ref::ReduceKind::Mean).at(0),
                    2.0f);
}

TEST(RefOps, ReduceAllDims)
{
    Tensor x(Shape{2, 2}, {1, 2, 3, 4});
    Tensor r = ref::reduce(x, {0, 1}, ref::ReduceKind::Sum);
    EXPECT_TRUE(r.shape().isScalar());
    EXPECT_FLOAT_EQ(r.at(0), 10.0f);
}

TEST(RefOps, Transpose2D)
{
    Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor t = ref::transpose(x, {1, 0});
    EXPECT_EQ(t.shape(), (Shape{3, 2}));
    EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
    EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0f);
}

TEST(RefOps, Transpose3DBatchSwap)
{
    Tensor x = Tensor::iota({2, 3, 4});
    Tensor t = ref::transpose(x, {0, 2, 1});
    EXPECT_EQ(t.shape(), (Shape{2, 4, 3}));
    EXPECT_FLOAT_EQ(t.at({1, 3, 2}), x.at({1, 2, 3}));
}

TEST(RefOps, TransposeRejectsBadPerm)
{
    Tensor x = Tensor::iota({2, 3});
    EXPECT_THROW(ref::transpose(x, {0, 0}), FatalError);
    EXPECT_THROW(ref::transpose(x, {0}), FatalError);
}

TEST(RefOps, ReshapePreservesData)
{
    Tensor x = Tensor::iota({2, 6});
    Tensor r = ref::reshape(x, Shape{3, 4});
    EXPECT_FLOAT_EQ(r.at({2, 3}), 11.0f);
    EXPECT_THROW(ref::reshape(x, Shape{5}), FatalError);
}

TEST(RefOps, ConcatAlongAxis)
{
    Tensor a = Tensor::full({2, 2}, 1.0f);
    Tensor b = Tensor::full({3, 2}, 2.0f);
    Tensor c = ref::concat({a, b}, 0);
    EXPECT_EQ(c.shape(), (Shape{5, 2}));
    EXPECT_FLOAT_EQ(c.at({0, 0}), 1.0f);
    EXPECT_FLOAT_EQ(c.at({4, 1}), 2.0f);
}

TEST(RefOps, ConcatRejectsMismatchedDims)
{
    Tensor a = Tensor::full({2, 2}, 1.0f);
    Tensor b = Tensor::full({2, 3}, 2.0f);
    EXPECT_THROW(ref::concat({a, b}, 0), FatalError);
}

TEST(RefOps, Matmul)
{
    Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = ref::matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2}));
    EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
    EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(RefOps, MatmulInnerDimMismatch)
{
    Tensor a = Tensor::iota({2, 3});
    Tensor b = Tensor::iota({2, 3});
    EXPECT_THROW(ref::matmul(a, b), FatalError);
}

TEST(RefOps, BatchMatmul)
{
    Tensor a = Tensor::full({2, 2, 3}, 1.0f);
    Tensor b = Tensor::full({2, 3, 4}, 2.0f);
    Tensor c = ref::batchMatmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2, 4}));
    for (std::int64_t i = 0; i < c.numElements(); ++i)
        EXPECT_FLOAT_EQ(c.at(i), 6.0f);
}

} // namespace
} // namespace astitch
