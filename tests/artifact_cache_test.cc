/**
 * @file
 * Tests of the persistent kernel-artifact cache: serde round-trips,
 * envelope integrity classification, every disk-corruption scenario
 * (truncation, bit-flips, version skew, foreign keys, tampered plans,
 * crash orphans), the injected disk faults, and concurrent compilers
 * sharing one cache directory. The invariant under test throughout:
 * no disk state may ever crash a compile or serve an unverified plan —
 * the worst case is an AS62x diagnostic plus a clean in-memory
 * recompile.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "core/astitch_backend.h"
#include "runtime/artifact_cache.h"
#include "runtime/plan_serde.h"
#include "runtime/session.h"
#include "support/atomic_file.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

/** A per-test cache directory, cleared of previous runs' files. */
std::string
freshDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "astitch_artifact_" + name;
    ArtifactCache(dir).clear();
    return dir;
}

SessionOptions
cacheOptions(const std::string &dir)
{
    SessionOptions options;
    options.artifact_cache_dir = dir;
    return options;
}

int
codeCount(const DiagnosticEngine &engine, const std::string &code)
{
    int n = 0;
    for (const Diagnostic &d : engine.diagnostics())
        n += d.code == code;
    return n;
}

/** Overwrite @p path with raw @p bytes (normal, non-atomic write — the
 * tests play the role of the hostile disk). */
void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(file.good());
    file.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
}

/** Compile-key of the single artifact in @p dir (strips the serde
 * pass-version suffix the cache appends). */
std::string
soleCompileKey(const std::string &dir)
{
    const auto files = ArtifactCache(dir).scan();
    for (const ArtifactFileInfo &info : files) {
        if (info.quarantined)
            continue;
        const std::size_t cut = info.key.rfind("|serde-pass-v");
        return cut == std::string::npos ? info.key
                                        : info.key.substr(0, cut);
    }
    return {};
}

/** Count live (non-quarantined) artifacts / `*.bad` sidecars. */
std::pair<int, int>
countArtifacts(const std::string &dir)
{
    int live = 0, bad = 0;
    for (const ArtifactFileInfo &info : ArtifactCache(dir).scan())
        (info.quarantined ? bad : live) += 1;
    return {live, bad};
}

/** Run one cached session over fig7; returns its outputs. */
std::vector<Tensor>
runSession(const Graph &graph, const SessionOptions &options,
           bool *from_artifact = nullptr,
           DiagnosticEngine *diags = nullptr)
{
    const TensorMap feeds = workloads::makeRandomFeeds(graph, 7);
    Session session(graph, std::make_unique<AStitchBackend>(), options);
    session.compile();
    if (from_artifact)
        *from_artifact = session.passTimings().fromArtifact();
    if (diags) {
        diags->clear();
        diags->merge(session.diagnostics());
    }
    EXPECT_FALSE(session.degradation().degraded());
    return session.run(feeds).outputs;
}

void
expectSameOutputs(const std::vector<Tensor> &got,
                  const std::vector<Tensor> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].allClose(want[i], 1e-6, 1e-7))
            << "output " << i << " diverged";
}

/** Little-endian appenders matching the wire format, for hand-crafted
 * envelopes. */
void
appendU32(std::string *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU64(std::string *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Frame @p payload under @p key like wrapArtifact, but with an
 * arbitrary wire version. */
std::string
wrapWithVersion(const std::string &key, const std::string &payload,
                std::uint32_t version)
{
    std::string header = "ASTC";
    appendU32(&header, version);
    appendU32(&header, static_cast<std::uint32_t>(key.size()));
    header += key;
    appendU64(&header, payload.size());
    appendU64(&header, checksum64(payload));
    appendU64(&header, checksum64(header));
    return header + payload;
}

TEST(ArtifactCacheCodes, AS62xFamilyRegistered)
{
    for (const char *code : {"AS620", "AS621", "AS622", "AS623",
                             "AS624", "AS625", "AS626"})
        EXPECT_NE(findDiagnosticCode(code), nullptr) << code;
}

TEST(PlanSerde, EnvelopeClassifiesEveryLie)
{
    const std::string key = "some/key";
    const std::string payload = "payload bytes with entropy 123";
    const std::string good = wrapArtifact(key, payload);

    std::string out;
    EXPECT_EQ(unwrapArtifact(good, key, &out), ArtifactStatus::Ok);
    EXPECT_EQ(out, payload);

    EXPECT_EQ(unwrapArtifact("", key, &out), ArtifactStatus::Truncated);
    EXPECT_EQ(unwrapArtifact(good.substr(0, good.size() - 1), key, &out),
              ArtifactStatus::Truncated);
    EXPECT_EQ(unwrapArtifact(good.substr(0, 10), key, &out),
              ArtifactStatus::Truncated);

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    EXPECT_EQ(unwrapArtifact(bad_magic, key, &out),
              ArtifactStatus::BadMagic);

    std::string bad_header = good; // flip inside the embedded key
    bad_header[12] = static_cast<char>(bad_header[12] ^ 0xff);
    EXPECT_EQ(unwrapArtifact(bad_header, key, &out),
              ArtifactStatus::BadHeaderChecksum);

    std::string bad_payload = good; // flip the final payload byte
    bad_payload.back() = static_cast<char>(bad_payload.back() ^ 0x01);
    EXPECT_EQ(unwrapArtifact(bad_payload, key, &out),
              ArtifactStatus::BadPayloadChecksum);

    EXPECT_EQ(unwrapArtifact(good, "another/key", &out),
              ArtifactStatus::KeyMismatch);

    EXPECT_EQ(unwrapArtifact(
                  wrapWithVersion(key, payload,
                                  kArtifactFormatVersion + 1),
                  key, &out),
              ArtifactStatus::VersionSkew);

    std::string embedded;
    EXPECT_EQ(inspectArtifact(good, &embedded, &out), ArtifactStatus::Ok);
    EXPECT_EQ(embedded, key);
}

TEST(ArtifactCache, ColdStoresWarmServesIdenticalPlans)
{
    const std::string dir = freshDir("cold_warm");
    const Graph graph = testing::buildFig7().graph;

    bool from_artifact = true;
    DiagnosticEngine diags;
    const auto cold =
        runSession(graph, cacheOptions(dir), &from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_EQ(codeCount(diags, "AS620"), 0);
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 0}));
    EXPECT_EQ(ArtifactCache(dir).scan()[0].status,
              artifactStatusName(ArtifactStatus::Ok));

    const auto warm =
        runSession(graph, cacheOptions(dir), &from_artifact, &diags);
    EXPECT_TRUE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS620"), 1);
    expectSameOutputs(warm, cold);
}

TEST(ArtifactCache, WarmHitReportsOnlyArtifactSpans)
{
    const std::string dir = freshDir("timings");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir));

    Session session(graph, std::make_unique<AStitchBackend>(),
                    cacheOptions(dir));
    session.compile();
    const CompilePassTimings &t = session.passTimings();
    ASSERT_TRUE(t.fromArtifact());
    // The proof a warm start skipped the compiler: every compile-pass
    // span is exactly zero (scheduling is session-side and may not be).
    EXPECT_EQ(t.clustering_ms, 0.0);
    EXPECT_EQ(t.remote_stitch_ms, 0.0);
    EXPECT_EQ(t.backend_compile_ms, 0.0);
    EXPECT_EQ(t.analysis_ms, 0.0);
    EXPECT_EQ(t.autotune_ms, 0.0);
    EXPECT_EQ(t.parallel_section_ms, 0.0);
    EXPECT_GT(t.artifact_load_ms + t.artifact_verify_ms, 0.0);
}

TEST(PlanSerde, RoundTripIsLosslessAndDeterministic)
{
    const std::string dir = freshDir("roundtrip");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir));

    ArtifactCache cache(dir);
    auto lease = cache.acquire(soleCompileKey(dir), graph,
                               GpuSpec::v100(), AnalysisOptions{},
                               nullptr);
    ASSERT_NE(lease.entry, nullptr);
    EXPECT_EQ(cache.stats().disk_hits, 1);

    const std::string once = serializePlanPayload(*lease.entry);
    JitCacheEntry back;
    std::string error;
    ASSERT_TRUE(deserializePlanPayload(once, &back, &error)) << error;
    EXPECT_EQ(serializePlanPayload(back), once);
}

TEST(ArtifactCache, TruncationAlwaysRecompiles)
{
    const std::string dir = freshDir("truncate");
    const Graph graph = testing::buildFig7().graph;
    const auto reference = runSession(graph, cacheOptions(dir));
    const std::string path =
        ArtifactCache(dir).filePathFor(soleCompileKey(dir));
    std::string good;
    ASSERT_EQ(readFileBytes(path, &good), FileReadStatus::Ok);

    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{17},
          good.size() / 2, good.size() - 1}) {
        SCOPED_TRACE("truncated to " + std::to_string(keep) + " bytes");
        writeRaw(path, good.substr(0, keep));
        bool from_artifact = true;
        DiagnosticEngine diags;
        const auto outputs = runSession(graph, cacheOptions(dir),
                                        &from_artifact, &diags);
        EXPECT_FALSE(from_artifact);
        EXPECT_GE(codeCount(diags, "AS621"), 1);
        expectSameOutputs(outputs, reference);
        // The recompile republished a good artifact over the wreck.
        EXPECT_EQ(ArtifactCache(dir).scan()[0].status,
                  artifactStatusName(ArtifactStatus::Ok));
    }
    EXPECT_EQ(countArtifacts(dir).second, 1); // evidence quarantined
}

TEST(ArtifactCache, BitFlipSweepNeverCrashesNorServes)
{
    const std::string dir = freshDir("bitflip");
    const Graph graph = testing::buildFig7().graph;
    const auto reference = runSession(graph, cacheOptions(dir));
    const std::string path =
        ArtifactCache(dir).filePathFor(soleCompileKey(dir));
    std::string good;
    ASSERT_EQ(readFileBytes(path, &good), FileReadStatus::Ok);

    // Flip one byte at a spread of offsets: header fields, the key,
    // the checksums and payload regions all get hit.
    for (std::size_t offset = 0; offset < good.size();
         offset += good.size() / 13 + 1) {
        SCOPED_TRACE("bit flip at offset " + std::to_string(offset));
        std::string evil = good;
        evil[offset] = static_cast<char>(evil[offset] ^ 0x40);
        writeRaw(path, evil);

        bool from_artifact = true;
        DiagnosticEngine diags;
        const auto outputs = runSession(graph, cacheOptions(dir),
                                        &from_artifact, &diags);
        EXPECT_FALSE(from_artifact);
        // Classification depends on which field the flip hit, but it
        // must always land in the corruption family: integrity (621),
        // version/key skew (622) or decode failure (623).
        EXPECT_GE(codeCount(diags, "AS621") + codeCount(diags, "AS622") +
                      codeCount(diags, "AS623"),
                  1);
        expectSameOutputs(outputs, reference);
    }
}

TEST(ArtifactCache, StaleWireVersionIsACleanMiss)
{
    const std::string dir = freshDir("version_skew");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir));
    const std::string path =
        ArtifactCache(dir).filePathFor(soleCompileKey(dir));
    std::string good;
    ASSERT_EQ(readFileBytes(path, &good), FileReadStatus::Ok);
    std::string key, payload;
    ASSERT_EQ(inspectArtifact(good, &key, &payload), ArtifactStatus::Ok);

    writeRaw(path,
             wrapWithVersion(key, payload, kArtifactFormatVersion + 7));
    bool from_artifact = true;
    DiagnosticEngine diags;
    runSession(graph, cacheOptions(dir), &from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS622"), 1);
    // Version skew is expected across builds — no quarantine, the
    // recompile just overwrites the foreign file.
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 0}));
    EXPECT_EQ(ArtifactCache(dir).scan()[0].status,
              artifactStatusName(ArtifactStatus::Ok));
}

TEST(ArtifactCache, ForeignArtifactUnderOurNameMissesCleanly)
{
    const std::string dir = freshDir("foreign_key");
    const Graph fig7 = testing::buildFig7().graph;
    const Graph softmax = testing::buildSoftmax(32, 64);
    const auto reference = runSession(fig7, cacheOptions(dir));
    const std::string fig7_path =
        ArtifactCache(dir).filePathFor(soleCompileKey(dir));

    const std::string dir2 = freshDir("foreign_key_src");
    runSession(softmax, cacheOptions(dir2));
    std::string foreign;
    ASSERT_EQ(readFileBytes(ArtifactCache(dir2).filePathFor(
                                soleCompileKey(dir2)),
                            &foreign),
              FileReadStatus::Ok);

    // A rename/copy gone wrong: another compilation's (intact) artifact
    // sits under our file name. The embedded key defends it.
    writeRaw(fig7_path, foreign);
    bool from_artifact = true;
    DiagnosticEngine diags;
    const auto outputs =
        runSession(fig7, cacheOptions(dir), &from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS622"), 1);
    expectSameOutputs(outputs, reference);
}

TEST(ArtifactCache, TamperedPlanIsRejectedBeforeServing)
{
    const std::string dir = freshDir("tamper");
    const Graph graph = testing::buildFig7().graph;
    const auto reference = runSession(graph, cacheOptions(dir));
    const std::string compile_key = soleCompileKey(dir);
    const std::string path = ArtifactCache(dir).filePathFor(compile_key);
    std::string good;
    ASSERT_EQ(readFileBytes(path, &good), FileReadStatus::Ok);
    std::string key, payload;
    ASSERT_EQ(inspectArtifact(good, &key, &payload), ArtifactStatus::Ok);

    JitCacheEntry entry;
    std::string error;
    ASSERT_TRUE(deserializePlanPayload(payload, &entry, &error)) << error;
    ASSERT_FALSE(entry.clusters.empty());

    // Tamper 1: a node reference beyond the graph — structural
    // validation must reject the decode (AS623).
    {
        JitCacheEntry evil = entry;
        evil.clusters[0].nodes[0] = 1000000;
        writeRaw(path,
                 wrapArtifact(key, serializePlanPayload(evil)));
        bool from_artifact = true;
        DiagnosticEngine diags;
        const auto outputs = runSession(graph, cacheOptions(dir),
                                        &from_artifact, &diags);
        EXPECT_FALSE(from_artifact);
        EXPECT_GE(codeCount(diags, "AS623"), 1);
        expectSameOutputs(outputs, reference);
        EXPECT_GE(countArtifacts(dir).second, 1); // quarantined
    }

    // Tamper 2: structurally valid but semantically wrong — a
    // checksum-correct artifact claiming a degraded compilation. The
    // serving gate must refuse it (AS624): degraded plans are never
    // served from disk.
    {
        JitCacheEntry evil = entry;
        ASSERT_FALSE(evil.degradation.clusters.empty());
        evil.degradation.clusters[0].level = LadderLevel::KernelPerOp;
        writeRaw(path,
                 wrapArtifact(key, serializePlanPayload(evil)));
        bool from_artifact = true;
        DiagnosticEngine diags;
        const auto outputs = runSession(graph, cacheOptions(dir),
                                        &from_artifact, &diags);
        EXPECT_FALSE(from_artifact);
        EXPECT_GE(codeCount(diags, "AS624"), 1);
        expectSameOutputs(outputs, reference);
    }

    // Tamper 3: a plan op re-pointed at a graph node outside its
    // cluster — passes range checks, so only the analyzer's
    // re-verification can catch it (AS624; AS623 acceptable if the
    // structural net tightens later).
    {
        JitCacheEntry evil = entry;
        ASSERT_FALSE(evil.compiled.empty());
        bool mutated = false;
        for (KernelPlan &plan : evil.compiled[0].kernels) {
            if (plan.ops.empty())
                continue;
            plan.ops[0].node = evil.clusters[0].inputs.empty()
                                   ? 0
                                   : evil.clusters[0].inputs[0];
            mutated = true;
            break;
        }
        ASSERT_TRUE(mutated);
        writeRaw(path,
                 wrapArtifact(key, serializePlanPayload(evil)));
        bool from_artifact = true;
        DiagnosticEngine diags;
        const auto outputs = runSession(graph, cacheOptions(dir),
                                        &from_artifact, &diags);
        EXPECT_FALSE(from_artifact);
        EXPECT_GE(codeCount(diags, "AS623") + codeCount(diags, "AS624"),
                  1);
        expectSameOutputs(outputs, reference);
    }
}

TEST(ArtifactCache, CrashOrphanTempIsInvisible)
{
    const std::string dir = freshDir("crash_orphan");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir));
    const std::string path =
        ArtifactCache(dir).filePathFor(soleCompileKey(dir));

    // Simulate a writer that died between temp-write and rename: the
    // bytes sit under the temp name, nothing at the real path.
    std::string bytes;
    ASSERT_EQ(readFileBytes(path, &bytes), FileReadStatus::Ok);
    ASSERT_EQ(::rename(path.c_str(), (path + ".tmp.424242").c_str()), 0);

    bool from_artifact = true;
    DiagnosticEngine diags;
    runSession(graph, cacheOptions(dir), &from_artifact, &diags);
    EXPECT_FALSE(from_artifact); // clean miss, no AS62x warnings
    EXPECT_EQ(codeCount(diags, "AS621") + codeCount(diags, "AS623") +
                  codeCount(diags, "AS624"),
              0);
    // scan() never lists orphan temps; clear() sweeps them.
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 0}));
    EXPECT_GE(ArtifactCache(dir).clear(), 2);
}

TEST(ArtifactCache, DegradedCompilationsAreNeverStored)
{
    const std::string dir = freshDir("degraded_store");
    const Graph graph = testing::buildFig7().graph;
    SessionOptions options = cacheOptions(dir);
    options.fault_plan = "backend-compile"; // permanent: forces demotion
    Session session(graph, std::make_unique<AStitchBackend>(), options);
    ASSERT_NO_THROW(session.compile());
    EXPECT_TRUE(session.degradation().degraded());
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{0, 0}));
}

TEST(ArtifactCache, InjectedWriteFailureKeepsTheCompilation)
{
    const std::string dir = freshDir("fault_write");
    const Graph graph = testing::buildFig7().graph;
    SessionOptions options = cacheOptions(dir);
    options.fault_plan = "cache-write-fail";
    bool from_artifact = true;
    DiagnosticEngine diags;
    runSession(graph, options, &from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS626"), 1);
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{0, 0}));

    // Without the fault the next compile stores normally.
    runSession(graph, cacheOptions(dir));
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 0}));
}

TEST(ArtifactCache, InjectedLockTimeoutSkipsTheDiskTier)
{
    const std::string dir = freshDir("fault_lock");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir)); // warm artifact available

    SessionOptions options = cacheOptions(dir);
    options.fault_plan = "cache-lock-timeout";
    bool from_artifact = true;
    DiagnosticEngine diags;
    runSession(graph, options, &from_artifact, &diags);
    EXPECT_FALSE(from_artifact); // tier skipped despite a good artifact
    EXPECT_GE(codeCount(diags, "AS625"), 1);
}

TEST(ArtifactCache, InjectedReadCorruptionQuarantinesAndRecovers)
{
    const std::string dir = freshDir("fault_read");
    const Graph graph = testing::buildFig7().graph;
    const auto reference = runSession(graph, cacheOptions(dir));

    SessionOptions options = cacheOptions(dir);
    options.fault_plan = "cache-read-corrupt";
    bool from_artifact = true;
    DiagnosticEngine diags;
    const auto outputs =
        runSession(graph, options, &from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS621"), 1);
    expectSameOutputs(outputs, reference);
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 1}));

    // The recompile republished: the next session warm-hits again.
    runSession(graph, cacheOptions(dir), &from_artifact);
    EXPECT_TRUE(from_artifact);
}

TEST(ArtifactCache, ConcurrentCompilersShareOneArtifact)
{
    const std::string dir = freshDir("concurrent");
    const Graph graph = testing::buildFig7().graph;
    const TensorMap feeds = workloads::makeRandomFeeds(graph, 7);
    std::vector<Tensor> reference;
    {
        Session ref(graph, std::make_unique<AStitchBackend>());
        reference = ref.run(feeds).outputs;
    }

    // Several sessions race on a cold directory. The per-key file lock
    // gives single-flight; whoever loses the race either waits and
    // warm-hits or recompiles — all must succeed with equal outputs.
    constexpr int kThreads = 4;
    std::vector<std::vector<Tensor>> outputs(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            Session session(graph, std::make_unique<AStitchBackend>(),
                            cacheOptions(dir));
            session.compile();
            outputs[i] = session.run(feeds).outputs;
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int i = 0; i < kThreads; ++i) {
        SCOPED_TRACE("thread " + std::to_string(i));
        expectSameOutputs(outputs[i], reference);
    }
    EXPECT_EQ(countArtifacts(dir), (std::pair<int, int>{1, 0}));
    EXPECT_EQ(ArtifactCache(dir).scan()[0].status,
              artifactStatusName(ArtifactStatus::Ok));
}

TEST(ArtifactCache, DirectAcquirePublishCountsStats)
{
    const std::string dir = freshDir("stats");
    const Graph graph = testing::buildFig7().graph;
    runSession(graph, cacheOptions(dir));
    const std::string compile_key = soleCompileKey(dir);

    ArtifactCache cache(dir);
    auto hit = cache.acquire(compile_key, graph, GpuSpec::v100(),
                             AnalysisOptions{}, nullptr);
    ASSERT_NE(hit.entry, nullptr);
    EXPECT_EQ(cache.stats().disk_hits, 1);

    auto miss = cache.acquire(compile_key + "/other", graph,
                              GpuSpec::v100(), AnalysisOptions{},
                              nullptr);
    EXPECT_EQ(miss.entry, nullptr);
    ASSERT_NE(miss.lock, nullptr);
    ASSERT_TRUE(miss.lock->locked());
    EXPECT_EQ(cache.stats().disk_misses, 1);

    EXPECT_TRUE(cache.publish(miss, compile_key + "/other", *hit.entry,
                              nullptr));
    EXPECT_EQ(cache.stats().stores, 1);
    EXPECT_EQ(countArtifacts(dir).first, 2);
}

} // namespace
} // namespace astitch
