/**
 * @file
 * Golden test of the SARIF 2.1.0 renderer across the registry's code
 * families: rule identity (ruleId <-> kebab-case rule name), severity
 * mapping to SARIF levels, and logical-location stability are contract
 * surface for CI consumers (GitHub code scanning ingests this output),
 * so any drift must be a deliberate diff here.
 */
#include <gtest/gtest.h>

#include "analysis/diagnostics.h"

namespace astitch {
namespace {

/** One representative per family: AS0xx consistency (error), AS6xx
 * fault tolerance (warning/note), AS7xx access verification, AS8xx
 * shape-parametric verification (error + fallback note). */
DiagnosticEngine
populatedEngine()
{
    DiagnosticEngine engine;
    engine.report("AS001", "stitch_k0", "node %3 is never scheduled");
    engine.report("AS601", "<cluster>", "demoted to kernel-per-op");
    engine.report("AS701", "stitch_k0", "access reaches index 4096");
    engine.report("AS721", "stitch_k1", "warp needs 32 sectors");
    engine.report("AS821", "stitch_k1", "slot overflows at batch=96");
    engine.report("AS831", "stitch_k2", "1 obligation did not close");
    return engine;
}

TEST(SarifGolden, ResultsAreStable)
{
    const std::string sarif = populatedEngine().renderSarif();

    // Envelope.
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"astitch-stitch-sanitizer\""),
              std::string::npos);

    // Each finding becomes one result with the code as ruleId, the
    // registered severity as level and the kernel as logical location.
    const char *expected[] = {
        "{\"ruleId\":\"AS001\",\"level\":\"error\","
        "\"message\":{\"text\":\"node %3 is never scheduled\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"stitch_k0\","
        "\"kind\":\"kernel\"}]}]}",
        "{\"ruleId\":\"AS601\",\"level\":\"warning\","
        "\"message\":{\"text\":\"demoted to kernel-per-op\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"<cluster>\","
        "\"kind\":\"kernel\"}]}]}",
        "{\"ruleId\":\"AS701\",\"level\":\"error\","
        "\"message\":{\"text\":\"access reaches index 4096\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"stitch_k0\","
        "\"kind\":\"kernel\"}]}]}",
        "{\"ruleId\":\"AS721\",\"level\":\"warning\","
        "\"message\":{\"text\":\"warp needs 32 sectors\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"stitch_k1\","
        "\"kind\":\"kernel\"}]}]}",
        "{\"ruleId\":\"AS821\",\"level\":\"error\","
        "\"message\":{\"text\":\"slot overflows at batch=96\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"stitch_k1\","
        "\"kind\":\"kernel\"}]}]}",
        "{\"ruleId\":\"AS831\",\"level\":\"note\","
        "\"message\":{\"text\":\"1 obligation did not close\"},"
        "\"locations\":[{\"logicalLocations\":[{\"name\":\"stitch_k2\","
        "\"kind\":\"kernel\"}]}]}",
    };
    for (const char *result : expected)
        EXPECT_NE(sarif.find(result), std::string::npos)
            << "missing result: " << result << "\nin: " << sarif;

    // Results preserve report order (SARIF consumers diff positionally).
    EXPECT_LT(sarif.find("\"ruleId\":\"AS001\""),
              sarif.find("\"ruleId\":\"AS601\""));
    EXPECT_LT(sarif.find("\"ruleId\":\"AS601\""),
              sarif.find("\"ruleId\":\"AS701\""));
    EXPECT_LT(sarif.find("\"ruleId\":\"AS701\""),
              sarif.find("\"ruleId\":\"AS821\""));
}

TEST(SarifGolden, RuleTableCoversEveryRegisteredCode)
{
    const std::string sarif = populatedEngine().renderSarif();
    for (const DiagnosticCode &info : diagnosticCodes()) {
        EXPECT_NE(sarif.find(std::string("{\"id\":\"") + info.code +
                             "\",\"name\":\"" + info.title + "\""),
                  std::string::npos)
            << info.code << " missing from the SARIF rule table";
    }
}

TEST(SarifGolden, RuleNamesForTheVerifierFamilyAreStable)
{
    // The kebab-case rule names are the user-facing identity of the
    // AS7xx/AS8xx families in code-scanning UIs; keep them frozen.
    const std::pair<const char *, const char *> rules[] = {
        {"AS701", "global-access-out-of-bounds"},
        {"AS702", "shared-access-out-of-bounds"},
        {"AS703", "negative-access-index"},
        {"AS704", "output-under-coverage"},
        {"AS711", "write-write-race"},
        {"AS712", "unsynchronized-read-write"},
        {"AS721", "uncoalesced-global-access"},
        {"AS731", "shared-bank-conflict"},
        {"AS741", "broadcast-recompute-blowup"},
        {"AS751", "cost-model-transaction-mismatch"},
        {"AS801", "parametric-scratch-capacity-exceeded"},
        {"AS802", "parametric-shared-out-of-bounds"},
        {"AS803", "parametric-negative-or-empty-index"},
        {"AS804", "parametric-output-under-coverage"},
        {"AS811", "parametric-write-write-race"},
        {"AS812", "parametric-read-write-overlap"},
        {"AS821", "parametric-arena-overflow"},
        {"AS831", "parametric-proof-fallback"},
    };
    for (const auto &[code, title] : rules) {
        const DiagnosticCode *info = findDiagnosticCode(code);
        ASSERT_NE(info, nullptr) << code;
        EXPECT_STREQ(info->title, title);
    }
}

TEST(SarifGolden, EmptyEngineRendersAnEmptyRun)
{
    const std::string sarif = DiagnosticEngine().renderSarif();
    EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
}

} // namespace
} // namespace astitch
