/**
 * @file
 * Cross-module integration tests: every backend's compiled plans are
 * executed functionally on the tiny workload variants and must be
 * value-identical to the reference interpreter (the paper's "accuracy is
 * the same between AStitch and other techniques"), and the headline
 * performance relations must hold on the production-shaped workloads.
 */
#include <gtest/gtest.h>

#include "backends/tf/tf_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "workloads/asr.h"
#include "workloads/bert.h"
#include "workloads/common.h"
#include "workloads/crnn.h"
#include "workloads/dien.h"
#include "workloads/random_graph.h"
#include "workloads/transformer.h"

namespace astitch {
namespace {

using namespace workloads;

std::vector<std::function<std::unique_ptr<Backend>()>>
allBackends()
{
    return {
        [] { return std::make_unique<TfBackend>(); },
        [] { return std::make_unique<XlaBackend>(); },
        [] { return std::make_unique<TvmBackend>(); },
        [] { return std::make_unique<TvmBackend>(true); },
        [] { return std::make_unique<TrtBackend>(); },
        [] { return std::make_unique<AStitchBackend>(); },
        [] {
            return std::make_unique<AStitchBackend>(
                AStitchBackend::atmOnly());
        },
        [] {
            return std::make_unique<AStitchBackend>(
                AStitchBackend::withoutMerging());
        },
    };
}

void
checkAllBackendsMatchReference(const Graph &g)
{
    const TensorMap feeds = makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    for (const auto &make : allBackends()) {
        Session session(g, make());
        const RunReport report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), expected.size())
            << report.backend_name << " on " << g.name();
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(
                report.outputs[i].allClose(expected[i], 1e-4, 1e-5))
                << report.backend_name << " on " << g.name()
                << " output " << i;
        }
    }
}

TEST(Correctness, BertTiny)
{
    checkAllBackendsMatchReference(buildBert(BertConfig::tiny()));
}

TEST(Correctness, TransformerTiny)
{
    checkAllBackendsMatchReference(
        buildTransformer(TransformerConfig::tiny()));
}

TEST(Correctness, DienTiny)
{
    checkAllBackendsMatchReference(buildDien(DienConfig::tiny()));
}

TEST(Correctness, AsrTiny)
{
    checkAllBackendsMatchReference(buildAsr(AsrConfig::tiny()));
}

TEST(Correctness, CrnnTiny)
{
    checkAllBackendsMatchReference(buildCrnn(CrnnConfig::tiny()));
}

TEST(Correctness, RandomGraphsAcrossSeeds)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        RandomGraphConfig config;
        config.num_nodes = 120;
        config.seed = seed;
        config.max_dim = 16;
        checkAllBackendsMatchReference(buildRandomGraph(config));
    }
}

// ---------------------------------------------------------------------
// Headline performance relations (the paper's qualitative claims).
// ---------------------------------------------------------------------

double
endToEndUs(const Graph &g, std::unique_ptr<Backend> backend)
{
    Session session(g, std::move(backend));
    return session.profile().end_to_end_us;
}

TEST(Performance, AStitchBeatsXlaOnEveryInferenceModel)
{
    for (const auto &spec : inferenceWorkloads()) {
        Graph g = spec.build();
        const double xla = endToEndUs(g, std::make_unique<XlaBackend>());
        const double astitch =
            endToEndUs(g, std::make_unique<AStitchBackend>());
        EXPECT_LT(astitch, xla) << spec.name;
    }
}

TEST(Performance, XlaBeatsTfOnEveryInferenceModel)
{
    for (const auto &spec : inferenceWorkloads()) {
        Graph g = spec.build();
        const double tf = endToEndUs(g, std::make_unique<TfBackend>());
        const double xla = endToEndUs(g, std::make_unique<XlaBackend>());
        EXPECT_LT(xla, tf) << spec.name;
    }
}

TEST(Performance, AStitchCutsMemKernelCountSubstantially)
{
    // Table 3: 65.7% fewer memory-intensive kernels on average.
    double total_xla = 0, total_astitch = 0;
    for (const auto &spec : inferenceWorkloads()) {
        Graph g = spec.build();
        Session xla(g, std::make_unique<XlaBackend>());
        Session astitch(g, std::make_unique<AStitchBackend>());
        total_xla += xla.profile().memKernelCount();
        total_astitch += astitch.profile().memKernelCount();
    }
    EXPECT_LT(total_astitch, 0.5 * total_xla);
}

TEST(Performance, AblationOrderingHoldsOnCrnn)
{
    // Table 4: XLA > ATM > HDM > AStitch (time decreasing).
    Graph g = buildCrnn(CrnnConfig::inference());
    const double xla = endToEndUs(g, std::make_unique<XlaBackend>());
    const double atm = endToEndUs(
        g, std::make_unique<AStitchBackend>(AStitchBackend::atmOnly()));
    const double hdm = endToEndUs(
        g,
        std::make_unique<AStitchBackend>(AStitchBackend::withoutMerging()));
    const double full =
        endToEndUs(g, std::make_unique<AStitchBackend>());
    EXPECT_LE(atm, xla);
    EXPECT_LE(hdm, atm);
    // Merging's operator-level-reuse gain is small on this CRNN (its
    // clusters are mostly single-candidate); allow sub-0.5% noise while
    // still forbidding a real regression.
    EXPECT_LE(full, hdm * 1.005);
}

TEST(Performance, AdaptiveMappingLiftsOccupancyOnIrregularShapes)
{
    // The DIEN <750000,32> reduce: naive 32-thread blocks vs packed
    // 1024-thread blocks.
    Graph g;
    {
        GraphBuilder b(g);
        NodeId x = b.parameter({750000, 32});
        g.markOutput(b.reduceSum(b.mul(x, x), {1}));
    }
    Session xla(g, std::make_unique<XlaBackend>());
    Session astitch(g, std::make_unique<AStitchBackend>());
    const auto xla_report = xla.profile();
    const auto as_report = astitch.profile();
    EXPECT_GT(as_report.counters.avgOccupancyTop(1.0),
              xla_report.counters.avgOccupancyTop(1.0));
    EXPECT_LT(as_report.end_to_end_us, xla_report.end_to_end_us);
}

TEST(Performance, StitchingReducesOffChipTraffic)
{
    // Table 5: total off-chip traffic drops — AStitch keeps most
    // intermediates on-chip; the few cross-schedule boundaries it does
    // spill are far outweighed by the cross-kernel re-reads it removes.
    Graph g = buildCrnn(CrnnConfig::inference());
    Session xla(g, std::make_unique<XlaBackend>());
    Session astitch(g, std::make_unique<AStitchBackend>());
    const auto xla_counters = xla.profile().counters;
    const auto as_counters = astitch.profile().counters;
    EXPECT_LT(as_counters.dramReadTransactions() +
                  as_counters.dramWriteTransactions(),
              xla_counters.dramReadTransactions() +
                  xla_counters.dramWriteTransactions());
    EXPECT_LT(as_counters.instFp32(), xla_counters.instFp32());
}

TEST(Performance, TvmRedundancyInflatesInstructions)
{
    // Fig. 5 at model scale: TVM's fused-with-recompute kernels issue
    // more fp32 instructions than AStitch.
    Graph g = buildBert(BertConfig::inference());
    Session tvm(g, std::make_unique<TvmBackend>());
    Session astitch(g, std::make_unique<AStitchBackend>());
    EXPECT_GT(tvm.profile().counters.instFp32(),
              astitch.profile().counters.instFp32());
}

} // namespace
} // namespace astitch
