/**
 * @file
 * Tests for the serving runtime (src/serve): traffic generation,
 * admission control, micro-batching, latency statistics, the router's
 * shed/upgrade state machine — plus the DynamicSession serving
 * extensions it rides on (serveBatchDegraded, bucketState, upgrade
 * hooks, warmup coalescing and failed-compile eviction) and the JIT
 * cache's behavior under serving load.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/astitch_backend.h"
#include "runtime/dynamic_session.h"
#include "runtime/jit_cache.h"
#include "serve/router.h"
#include "support/logging.h"
#include "test_graphs.h"

namespace astitch {
namespace {

using serve::BatchKey;
using serve::BatchPolicy;
using serve::LatencyRecorder;
using serve::MicroBatcher;
using serve::Request;
using serve::Response;
using serve::RouterOptions;
using serve::ServeResult;
using serve::ServeRouter;
using serve::ShedReason;
using serve::TenantSpec;
using serve::TokenBucket;
using serve::TrafficOptions;

GraphTemplate
softmaxTemplate(std::int64_t cols = 64)
{
    return [cols](const std::vector<std::int64_t> &dims) {
        return testing::buildSoftmax(dims.at(0), cols);
    };
}

BackendFactory
astitchFactory()
{
    return [] { return std::make_unique<AStitchBackend>(); };
}

/** One serving tenant over the softmax template. */
TenantSpec
softmaxTenant(const std::string &name, const std::string &model,
              double rate_qps, std::int64_t min_items,
              std::int64_t max_items, double admit_qps = 0.0)
{
    TenantSpec spec;
    spec.name = name;
    spec.model = model;
    spec.graph = softmaxTemplate();
    spec.rate_qps = rate_qps;
    spec.min_items = min_items;
    spec.max_items = max_items;
    spec.admit_qps = admit_qps;
    return spec;
}

RouterOptions
routerOptions()
{
    RouterOptions options;
    options.backend = astitchFactory();
    options.batch.max_batch = 2;
    options.batch.max_delay_us = 2000.0;
    return options;
}

/** A hand-built request (arrival order = id order expected by run()). */
Request
request(std::int64_t id, int tenant, std::int64_t items,
        double arrival_us)
{
    Request r;
    r.id = id;
    r.tenant = tenant;
    r.items = items;
    r.arrival_us = arrival_us;
    return r;
}

// ---------------------------------------------------------------------
// Traffic generation.
// ---------------------------------------------------------------------

TEST(ServeTraffic, TraceIsSeedDeterministic)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 500.0, 8, 64),
        softmaxTenant("b", "m", 300.0, 16, 32),
    };
    TrafficOptions options;
    options.seed = 7;
    options.duration_us = 100000.0;
    const std::vector<Request> first = generateTrace(tenants, options);
    const std::vector<Request> second = generateTrace(tenants, options);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(traceFingerprint(first), traceFingerprint(second));
    EXPECT_NE(traceFingerprint(first), 0u);

    options.seed = 8;
    const std::vector<Request> other = generateTrace(tenants, options);
    EXPECT_NE(traceFingerprint(first), traceFingerprint(other));
}

TEST(ServeTraffic, TraceIsSortedDenseAndInRange)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 400.0, 8, 64),
        softmaxTenant("b", "m", 200.0, 16, 32),
    };
    TrafficOptions options;
    options.seed = 3;
    options.duration_us = 200000.0;
    const std::vector<Request> trace = generateTrace(tenants, options);
    ASSERT_FALSE(trace.empty());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Request &r = trace[i];
        EXPECT_EQ(r.id, static_cast<std::int64_t>(i)); // dense ids
        if (i > 0) {
            EXPECT_GE(r.arrival_us, trace[i - 1].arrival_us);
        }
        EXPECT_GE(r.arrival_us, 0.0);
        EXPECT_LT(r.arrival_us, options.duration_us);
        ASSERT_TRUE(r.tenant == 0 || r.tenant == 1);
        const TenantSpec &spec =
            tenants[static_cast<std::size_t>(r.tenant)];
        EXPECT_GE(r.items, spec.min_items);
        EXPECT_LE(r.items, spec.max_items);
    }
}

TEST(ServeTraffic, MaxRequestsCapsTheTrace)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 1000.0, 8, 8)};
    TrafficOptions options;
    options.seed = 1;
    options.duration_us = 1e6;
    options.max_requests = 10;
    EXPECT_EQ(generateTrace(tenants, options).size(), 10u);
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

TEST(ServeAdmission, TokenBucketAdmitsBurstThenSheds)
{
    // 100 qps, burst 2: the bucket starts full.
    TokenBucket bucket(100.0, 2.0);
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_FALSE(bucket.tryAcquire(0.0)); // burst exhausted
    // 100 qps = one token per 10000 us.
    EXPECT_FALSE(bucket.tryAcquire(5000.0));
    EXPECT_TRUE(bucket.tryAcquire(20000.0)); // ~2 tokens accrued
    EXPECT_FALSE(bucket.tryAcquire(20000.0));
}

TEST(ServeAdmission, TokenBucketRefillCapsAtBurst)
{
    TokenBucket bucket(100.0, 2.0);
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    // A long idle period refills to the burst cap, not beyond.
    EXPECT_NEAR(bucket.available(1e9), 2.0, 1e-9);
    EXPECT_TRUE(bucket.tryAcquire(1e9));
    EXPECT_TRUE(bucket.tryAcquire(1e9));
    EXPECT_FALSE(bucket.tryAcquire(1e9));
}

TEST(ServeAdmission, ZeroRateDisablesLimiting)
{
    TokenBucket bucket(0.0, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(bucket.tryAcquire(0.0));
}

// ---------------------------------------------------------------------
// Micro-batching.
// ---------------------------------------------------------------------

TEST(ServeBatcher, SizeWatermarkFiresAtMaxBatch)
{
    BatchPolicy policy;
    policy.max_batch = 3;
    MicroBatcher batcher(policy);
    BatchKey key;
    key.bucket = {64};
    EXPECT_EQ(batcher.enqueue(key, request(0, 0, 30, 0.0)),
              MicroBatcher::Enqueue::Queued);
    EXPECT_EQ(batcher.enqueue(key, request(1, 0, 20, 1.0)),
              MicroBatcher::Enqueue::Queued);
    EXPECT_EQ(batcher.enqueue(key, request(2, 0, 10, 2.0)),
              MicroBatcher::Enqueue::Watermark);
    const std::vector<Request> batch = batcher.take(key);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 0); // oldest first
    EXPECT_EQ(batch[2].id, 2);
    EXPECT_TRUE(batcher.empty());
}

TEST(ServeBatcher, DeadlineWatermarkAndKeyOrder)
{
    BatchPolicy policy;
    policy.max_batch = 8;
    policy.max_delay_us = 1000.0;
    MicroBatcher batcher(policy);
    EXPECT_EQ(batcher.nextDeadlineUs(),
              std::numeric_limits<double>::infinity());
    BatchKey early, late;
    early.bucket = {32};
    late.bucket = {64};
    batcher.enqueue(late, request(0, 0, 40, 500.0));
    batcher.enqueue(early, request(1, 0, 20, 100.0));
    // Earliest deadline across queues: 100 + 1000.
    EXPECT_DOUBLE_EQ(batcher.nextDeadlineUs(), 1100.0);
    EXPECT_TRUE(batcher.expired(1000.0).empty());
    const std::vector<BatchKey> due = batcher.expired(1600.0);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_TRUE(due[0] == early); // key order, not arrival order
    EXPECT_TRUE(due[1] == late);
}

TEST(ServeBatcher, QueueCapRejects)
{
    BatchPolicy policy;
    policy.max_batch = 10;
    policy.max_queue = 2;
    MicroBatcher batcher(policy);
    BatchKey key;
    key.bucket = {64};
    EXPECT_EQ(batcher.enqueue(key, request(0, 0, 1, 0.0)),
              MicroBatcher::Enqueue::Queued);
    EXPECT_EQ(batcher.enqueue(key, request(1, 0, 1, 0.0)),
              MicroBatcher::Enqueue::Queued);
    EXPECT_EQ(batcher.enqueue(key, request(2, 0, 1, 0.0)),
              MicroBatcher::Enqueue::Rejected);
    EXPECT_EQ(batcher.depth(key), 2u);
}

// ---------------------------------------------------------------------
// Latency statistics.
// ---------------------------------------------------------------------

TEST(ServeStats, NearestRankPercentiles)
{
    LatencyRecorder recorder;
    EXPECT_DOUBLE_EQ(recorder.percentile(99.0), 0.0); // empty
    for (int i = 1; i <= 100; ++i)
        recorder.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(recorder.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(recorder.mean(), 50.5);
}

// ---------------------------------------------------------------------
// DynamicSession serving extensions (satellites: warmup coalescing,
// failed-compile eviction, degraded-serve semantics, upgrade hooks).
// ---------------------------------------------------------------------

TEST(ServeDynamicSession, ConcurrentWarmupsCoalesceIntoOneCompile)
{
    // Racing warmup() + serveBatch() callers for one bucket must share
    // a single compilation (the bucket-future single-flight).
    DynamicSession session(softmaxTemplate(), astitchFactory());
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i)
        threads.emplace_back([&session] { session.warmup({64, 64}); });
    for (int i = 0; i < 2; ++i)
        threads.emplace_back(
            [&session] { session.serveBatch({64, 64}); });
    for (std::thread &t : threads)
        t.join();
    session.waitForWarmups();
    EXPECT_EQ(session.numCompiledBuckets(), 1);
    EXPECT_EQ(session.bucketState({64, 64}),
              DynamicSession::BucketState::Ready);
}

TEST(ServeDynamicSession, CrossSessionCompilesSingleFlightViaJitCache)
{
    // Two sessions over the same template with the shared JIT cache:
    // concurrent serves must produce exactly one compilation — the
    // second caller either joins the in-flight one or hits the cache.
    JitCache::global().clear();
    DynamicSessionOptions options;
    options.session.use_jit_cache = true;
    DynamicSession a(softmaxTemplate(96), astitchFactory(), options);
    DynamicSession b(softmaxTemplate(96), astitchFactory(), options);
    std::thread ta([&a] { a.serveBatch({48, 96}); });
    std::thread tb([&b] { b.serveBatch({48, 96}); });
    ta.join();
    tb.join();
    const JitCache::Stats stats = JitCache::global().stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_GE(stats.hits + stats.coalesced, 1);
    JitCache::global().clear();
}

TEST(ServeDynamicSession, FailedWarmupIsEvictedAndRetried)
{
    // A compilation that throws must evict its bucket future so the
    // next request retries instead of consuming a poisoned future
    // forever.
    auto failures = std::make_shared<std::atomic<int>>(1);
    GraphTemplate flaky =
        [failures](const std::vector<std::int64_t> &dims) {
            if (failures->fetch_sub(1) > 0)
                throw std::runtime_error("transient build failure");
            return testing::buildSoftmax(dims.at(0), dims.at(1));
        };
    DynamicSession session(std::move(flaky), astitchFactory());
    session.warmup({32, 32});
    session.waitForWarmups();
    // The failed future is gone: the bucket reads as never-requested.
    EXPECT_EQ(session.bucketState({32, 32}),
              DynamicSession::BucketState::Missing);
    EXPECT_EQ(session.numCompiledBuckets(), 0);
    // The retry compiles cleanly.
    const DynamicSession::BatchServe serve = session.serveBatch({32, 32});
    EXPECT_FALSE(serve.degraded);
    EXPECT_EQ(session.numCompiledBuckets(), 1);
}

TEST(ServeDynamicSession, DegradedServeAndUpgradeHook)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());

    // The loop-fusion twin serves immediately, flagged degraded, and
    // never touches the full bucket's lifecycle.
    const DynamicSession::BatchServe degraded =
        session.serveBatchDegraded({64, 64});
    EXPECT_TRUE(degraded.degraded);
    EXPECT_EQ(degraded.level, LadderLevel::LoopFusion);
    EXPECT_GT(degraded.report.end_to_end_us, 0.0);
    EXPECT_EQ(session.numFallbackBuckets(), 1);
    EXPECT_EQ(session.numCompiledBuckets(), 0);
    EXPECT_EQ(session.bucketState({64, 64}),
              DynamicSession::BucketState::Missing);

    // A second degraded serve reuses the twin.
    session.serveBatchDegraded({64, 64});
    EXPECT_EQ(session.numFallbackBuckets(), 1);

    // The background full compile fires the upgrade hook with the
    // bucket key; afterwards the same shape serves full-stitch.
    std::atomic<int> upgrades{0};
    std::vector<std::int64_t> upgraded_key;
    session.setUpgradeHook(
        [&](const std::vector<std::int64_t> &key) {
            upgraded_key = key;
            ++upgrades;
        });
    session.warmup({64, 64});
    session.waitForWarmups();
    EXPECT_EQ(upgrades.load(), 1);
    EXPECT_EQ(upgraded_key, (std::vector<std::int64_t>{64, 64}));
    EXPECT_EQ(session.bucketState({64, 64}),
              DynamicSession::BucketState::Ready);
    const DynamicSession::BatchServe full = session.serveBatch({64, 64});
    EXPECT_FALSE(full.degraded);
    EXPECT_EQ(full.level, LadderLevel::FullStitch);
    // The twin is cheaper than the full-stitch compile by design;
    // execution-wise the full-stitch plan must not be slower than the
    // kernel-per-op-ish twin for this memory-intensive graph.
    EXPECT_LE(full.report.end_to_end_us,
              degraded.report.end_to_end_us * 1.5);
}

TEST(ServeJitCache, EvictionUnderServingLoadKeepsHoldersAlive)
{
    // Serving holds cache entries as shared_ptr: an eviction must not
    // invalidate an in-use compilation, and the next request for the
    // evicted key recompiles exactly once (single-flight), repopulating
    // the cache.
    JitCache cache(1);
    std::atomic<int> compiles{0};
    const auto compile = [&compiles] {
        ++compiles;
        JitCacheEntry entry;
        entry.compiled.resize(1);
        return entry;
    };
    const JitCache::EntryPtr held = cache.getOrCompile("alpha", compile);
    ASSERT_TRUE(held);
    EXPECT_EQ(compiles.load(), 1);

    cache.getOrCompile("beta", compile); // capacity 1: evicts alpha
    EXPECT_EQ(compiles.load(), 2);
    EXPECT_FALSE(cache.lookup("alpha"));
    // The evicted holder still serves.
    EXPECT_EQ(held->compiled.size(), 1u);

    // Recompile of the evicted key is deduped across racing servers.
    std::atomic<int> slow_compiles{0};
    std::vector<std::thread> threads;
    std::vector<JitCache::EntryPtr> entries(4);
    for (int i = 0; i < 4; ++i)
        threads.emplace_back([&cache, &slow_compiles, &entries, i] {
            entries[static_cast<std::size_t>(i)] = cache.getOrCompile(
                "alpha", [&slow_compiles] {
                    ++slow_compiles;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    return JitCacheEntry{};
                });
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(slow_compiles.load(), 1);
    for (const JitCache::EntryPtr &entry : entries)
        EXPECT_TRUE(entry);
    EXPECT_TRUE(cache.lookup("alpha")); // repopulated
}

// ---------------------------------------------------------------------
// Router end-to-end.
// ---------------------------------------------------------------------

TEST(ServeRouterTest, EveryRequestServedOrShedWithReason)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 400.0, 8, 64),
        softmaxTenant("b", "m", 200.0, 16, 32, /*admit_qps=*/100.0),
    };
    TrafficOptions traffic;
    traffic.seed = 11;
    traffic.duration_us = 150000.0;
    const std::vector<Request> trace = generateTrace(tenants, traffic);
    ServeRouter router(tenants, routerOptions());
    const ServeResult result = router.run(trace);

    ASSERT_EQ(result.responses.size(), trace.size());
    EXPECT_EQ(result.served + result.shed,
              static_cast<std::int64_t>(trace.size()));
    for (const Response &r : result.responses) {
        if (r.shed) {
            EXPECT_NE(r.reason, ShedReason::None);
        } else {
            EXPECT_GT(r.done_us, 0.0);
            EXPECT_GE(r.start_us, r.arrival_us);
            EXPECT_GE(r.latency_us, 0.0);
            EXPECT_GE(r.padded_items, r.batch_items);
        }
    }
    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_EQ(result.tenants[0].name, "a");
    EXPECT_GT(result.tenants[0].served, 0);
}

TEST(ServeRouterTest, ReplayIsDeterministic)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 500.0, 8, 64),
        softmaxTenant("b", "m", 250.0, 16, 32),
    };
    TrafficOptions traffic;
    traffic.seed = 21;
    traffic.duration_us = 100000.0;
    const std::vector<Request> trace = generateTrace(tenants, traffic);

    ServeRouter first(tenants, routerOptions());
    ServeRouter second(tenants, routerOptions());
    const ServeResult a = first.run(trace);
    const ServeResult b = second.run(trace);
    EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
    EXPECT_EQ(a.batch_fingerprint, b.batch_fingerprint);
    EXPECT_NE(a.batch_fingerprint, 0u);
    EXPECT_EQ(a.total_batches, b.total_batches);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.responses[i].latency_us,
                         b.responses[i].latency_us);
        EXPECT_EQ(a.responses[i].degraded, b.responses[i].degraded);
    }
}

TEST(ServeRouterTest, CompileStormShedsDegradedThenUpgrades)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 100.0, 64, 64)};
    RouterOptions options = routerOptions();
    options.batch.max_batch = 1; // every request is its own batch
    options.shed_wait_threshold_us = 1.0;

    // Request 0 arrives cold: its full bucket cannot be ready within
    // the shed threshold, so it must be answered from the loop-fusion
    // twin. Request 1 arrives long after any virtual compile cost, so
    // the same bucket must have upgraded to full-stitch service.
    const std::vector<Request> trace = {
        request(0, 0, 64, 0.0),
        request(1, 0, 64, 1e7),
    };
    ServeRouter router(tenants, options);
    const ServeResult result = router.run(trace);

    EXPECT_TRUE(result.responses[0].degraded);
    EXPECT_EQ(result.responses[0].level, LadderLevel::LoopFusion);
    EXPECT_FALSE(result.responses[1].degraded);
    EXPECT_EQ(result.responses[1].level, LadderLevel::FullStitch);
    EXPECT_EQ(result.degraded_serves, 1);
    EXPECT_EQ(result.compiled_twin, 1);
    EXPECT_EQ(result.upgraded_buckets, 1);
    EXPECT_GE(result.hook_upgrades, 1);
    // The degraded answer landed immediately (inside the threshold
    // regime), not after the full compile's virtual cost.
    EXPECT_LT(result.responses[0].latency_us,
              result.last_full_ready_us);
}

TEST(ServeRouterTest, SheddingOffMakesColdRequestsWait)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 100.0, 64, 64)};
    RouterOptions options = routerOptions();
    options.batch.max_batch = 1;
    options.load_shedding = false;
    const std::vector<Request> trace = {request(0, 0, 64, 0.0)};
    ServeRouter router(tenants, options);
    const ServeResult result = router.run(trace);
    EXPECT_FALSE(result.responses[0].degraded);
    EXPECT_EQ(result.degraded_serves, 0);
    EXPECT_EQ(result.compiled_twin, 0);
    // The request waited out the whole virtual compile.
    EXPECT_GE(result.responses[0].latency_us, options.cold_base_us);
}

TEST(ServeRouterTest, WarmupEliminatesColdStartAndDegradation)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 300.0, 16, 64)};
    RouterOptions options = routerOptions();
    options.shed_wait_threshold_us = 1.0;
    TrafficOptions traffic;
    traffic.seed = 5;
    traffic.duration_us = 100000.0;
    const std::vector<Request> trace = generateTrace(tenants, traffic);

    ServeRouter cold(tenants, options);
    const ServeResult cold_result = cold.run(trace);

    ServeRouter warm(tenants, options);
    const std::vector<std::int64_t> hot = warm.hotBucketItems(0);
    EXPECT_FALSE(hot.empty());
    warm.warmupTenant(0, hot);
    const ServeResult warm_result = warm.run(trace);

    EXPECT_GT(cold_result.degraded_serves, 0);
    EXPECT_EQ(warm_result.degraded_serves, 0);
    EXPECT_EQ(warm_result.last_full_ready_us, 0.0);
    // Warm per-request latency never exceeds cold (same trace, no
    // compile waits, no degraded detours).
    ASSERT_EQ(warm_result.responses.size(), cold_result.responses.size());
    for (std::size_t i = 0; i < warm_result.responses.size(); ++i) {
        if (!warm_result.responses[i].shed &&
            !cold_result.responses[i].shed) {
            EXPECT_LE(warm_result.responses[i].latency_us,
                      cold_result.responses[i].latency_us + 1e-6);
        }
    }
}

TEST(ServeRouterTest, TenantsSharingAModelCoalesceCompilations)
{
    // Two tenants of one model, batches landing in the same executed
    // bucket back to back: the second fire must not be charged a second
    // full compilation.
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 100.0, 64, 64),
        softmaxTenant("b", "m", 100.0, 64, 64),
    };
    RouterOptions options = routerOptions();
    options.batch.max_batch = 1;
    options.shed_wait_threshold_us = 1e9; // never shed: join instead
    const std::vector<Request> trace = {
        request(0, 0, 64, 0.0),
        request(1, 1, 64, 100.0),
    };
    ServeRouter router(tenants, options);
    const ServeResult result = router.run(trace);
    EXPECT_EQ(result.compiled_full, 1);
    EXPECT_EQ(result.coalesced_joins, 2); // both waited on one compile
    // Both answered at the shared virtual ready time (plus executor
    // serialization), neither degraded.
    EXPECT_FALSE(result.responses[0].degraded);
    EXPECT_FALSE(result.responses[1].degraded);
}

TEST(ServeRouterTest, AdmissionShedsOnlyTheBurstyTenant)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("greedy", "m", 2000.0, 8, 8, /*admit_qps=*/100.0),
        softmaxTenant("polite", "m", 100.0, 8, 8),
    };
    TrafficOptions traffic;
    traffic.seed = 9;
    traffic.duration_us = 100000.0;
    const std::vector<Request> trace = generateTrace(tenants, traffic);
    ServeRouter router(tenants, routerOptions());
    const ServeResult result = router.run(trace);
    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_GT(result.tenants[0].shed_admission, 0);
    EXPECT_EQ(result.tenants[1].shed, 0);
}

TEST(ServeRouterTest, StatsJsonCarriesTheSchema)
{
    const std::vector<TenantSpec> tenants = {
        softmaxTenant("a", "m", 200.0, 16, 64)};
    TrafficOptions traffic;
    traffic.seed = 2;
    traffic.duration_us = 50000.0;
    ServeRouter router(tenants, routerOptions());
    const ServeResult result =
        router.run(generateTrace(tenants, traffic));
    ASSERT_EQ(result.tenants.size(), 1u);
    const std::string json = tenantStatsJson(result.tenants[0]);
    for (const char *field :
         {"\"tenant\":", "\"p50_us\":", "\"p99_us\":", "\"qps\":",
          "\"degraded_serves\":", "\"avg_occupancy\":"})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

} // namespace
} // namespace astitch
