/**
 * @file
 * Tests of the shape-parametric verifier (AS8xx): the symbolic domain
 * arithmetic (LinExpr / ShapeDim / ShapeCertificate), diagnostic
 * family parsing and deduplicated merges, and seeded mutations of
 * synthetic kernel plans that must each fire exactly their AS8xx code.
 *
 * The mutation plans are built by hand (verifyKernelPlanSymbolic is
 * deliberately Graph-free) so each test controls exactly one proof
 * obligation; the differential test covers the compiled-plan path.
 */
#include <gtest/gtest.h>

#include <vector>

#include "analysis/kernel_verifier.h"
#include "support/logging.h"

namespace astitch {
namespace {

// ---------------------------------------------------------------------
// Symbolic domain arithmetic.
// ---------------------------------------------------------------------

std::vector<ShapeDim>
oneDim(std::int64_t value = 128, std::int64_t lo = 65,
       std::int64_t hi = 128, std::int64_t divisor = 1)
{
    ShapeDim d;
    d.name = "batch";
    d.value = value;
    d.lo = lo;
    d.hi = hi;
    d.divisor = divisor;
    return {d};
}

TEST(LinExpr, EvaluatesAndBoundsLinearTerms)
{
    const std::vector<ShapeDim> dims = oneDim();
    const LinExpr e = LinExpr::dim(0, 64, 128); // 64*batch + 128
    EXPECT_FALSE(e.isConstant());
    EXPECT_EQ(e.evalAt({100}), 6528);
    EXPECT_EQ(e.atCompilePoint(dims), 64 * 128 + 128);
    const SymInterval iv = e.interval(dims);
    EXPECT_EQ(iv.lo, 64 * 65 + 128);
    EXPECT_EQ(iv.hi, 64 * 128 + 128);
    EXPECT_EQ(e.toString(dims), "64*batch + 128");
}

TEST(LinExpr, NegativeCoefficientsSwapIntervalEnds)
{
    const std::vector<ShapeDim> dims = oneDim();
    const LinExpr e = LinExpr::dim(0, -2, 1000); // 1000 - 2*batch
    const SymInterval iv = e.interval(dims);
    EXPECT_EQ(iv.lo, 1000 - 2 * 128);
    EXPECT_EQ(iv.hi, 1000 - 2 * 65);
}

TEST(LinExpr, DivisibilityIsTheGcdOfTermGranularities)
{
    const std::vector<ShapeDim> dims = oneDim(128, 65, 128,
                                              /*divisor=*/8);
    // 48*batch with batch % 8 == 0: every value divisible by 384.
    EXPECT_EQ(LinExpr::dim(0, 48).divisibility(dims), 384);
    // Adding a constant coarsens it to gcd(384, 128) = 128.
    EXPECT_EQ(LinExpr::dim(0, 48, 128).divisibility(dims), 128);
}

TEST(ShapeDim, AdmitsRangeAndGranularity)
{
    const ShapeDim d = oneDim(128, 65, 128, 4).front();
    EXPECT_TRUE(d.admits(68));
    EXPECT_TRUE(d.admits(128));
    EXPECT_FALSE(d.admits(66));  // not a multiple of 4
    EXPECT_FALSE(d.admits(64));  // below lo
    EXPECT_FALSE(d.admits(132)); // above hi
    EXPECT_FALSE(d.point());
    EXPECT_TRUE(oneDim(7, 7, 7).front().point());
}

TEST(ShapeCertificate, CoversOnlyProvenAdmissibleShapes)
{
    ShapeCertificate cert;
    cert.dims = oneDim();
    EXPECT_FALSE(cert.covers({100})); // verdict None
    cert.verdict = ShapeCertificate::Verdict::Proven;
    EXPECT_TRUE(cert.covers({100}));
    EXPECT_TRUE(cert.covers({65}));
    EXPECT_TRUE(cert.covers({128}));
    EXPECT_FALSE(cert.covers({64}));
    EXPECT_FALSE(cert.covers({100, 2})); // arity mismatch
    cert.verdict = ShapeCertificate::Verdict::Fallback;
    EXPECT_FALSE(cert.covers({100}));
}

// ---------------------------------------------------------------------
// Diagnostic family parsing and deduplicated merges.
// ---------------------------------------------------------------------

TEST(DiagnosticFamilies, ParsesListsAndRanges)
{
    EXPECT_EQ(parseFamilyList("AS7xx,AS8xx"),
              (std::vector<std::string>{"AS7", "AS8"}));
    EXPECT_EQ(parseFamilyList("AS1-AS3"),
              (std::vector<std::string>{"AS1", "AS2", "AS3"}));
    EXPECT_EQ(parseFamilyList(" AS2xx , AS0xx-AS1xx , AS2 "),
              (std::vector<std::string>{"AS2", "AS0", "AS1"}));
    EXPECT_THROW(parseFamilyList(""), FatalError);
    EXPECT_THROW(parseFamilyList("AS7,,AS8"), FatalError);
    EXPECT_THROW(parseFamilyList("XS7xx"), FatalError);
    EXPECT_THROW(parseFamilyList("AS5-AS1"), FatalError);
}

TEST(DiagnosticFamilies, WithFamiliesKeepsOnlyListedCodes)
{
    DiagnosticEngine engine;
    engine.report("AS701", "k", "a");
    engine.report("AS831", "k", "b");
    engine.report("AS101", "k", "c");
    const DiagnosticEngine filtered =
        engine.withFamilies(parseFamilyList("AS7xx,AS8xx"));
    ASSERT_EQ(filtered.size(), 2u);
    EXPECT_EQ(filtered.diagnostics()[0].code, "AS701");
    EXPECT_EQ(filtered.diagnostics()[1].code, "AS831");
}

TEST(DiagnosticFamilies, MergeDedupedFoldsIdenticalFindings)
{
    DiagnosticEngine a;
    a.report("AS831", "kernel_0", "proof did not close");

    DiagnosticEngine b;
    b.report("AS831", "kernel_0", "proof did not close"); // identical
    b.report("AS831", "kernel_1", "other kernel");        // distinct

    DiagnosticEngine merged;
    merged.mergeDeduped(a, "bucket 64");
    merged.mergeDeduped(b, "bucket 128");
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.diagnostics()[0].provenance,
              (std::vector<std::string>{"bucket 64", "bucket 128"}));
    EXPECT_EQ(merged.diagnostics()[1].provenance,
              (std::vector<std::string>{"bucket 128"}));
    // The rendered line surfaces the provenance.
    EXPECT_NE(merged.diagnostics()[0].toString().find(
                  "seen in: bucket 64, bucket 128"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Seeded mutations: one synthetic plan per AS8xx code, each firing
// exactly once.
// ---------------------------------------------------------------------

/** Family gates so one test exercises exactly one proof family. */
VerifierOptions
boundsOnly()
{
    VerifierOptions options;
    options.bounds = true;
    options.races = false;
    options.coalescing = options.bank_conflicts = false;
    options.recompute = options.cost_check = false;
    return options;
}

VerifierOptions
racesOnly()
{
    VerifierOptions options = boundsOnly();
    options.bounds = false;
    options.races = true;
    return options;
}

/** A canonical off-chip write of 64*batch elements that proves clean:
 * mutations below each break exactly one obligation. */
KernelPlan
provenPlan()
{
    KernelPlan plan;
    plan.name = "synthetic";
    plan.launch = LaunchDims{8, 256};

    OpAccess a;
    a.node = 0;
    a.op_index = 0;
    a.kind = AccessKind::Write;
    a.space = AccessSpace::Global;
    a.buffer = "out:%0";
    a.extent = 64 * 128;
    a.index = linearEnumeration(a.extent, 8, 1, 256);
    a.guard = a.extent;
    plan.accesses.push_back(a);

    SymbolicAccess twin;
    twin.access_index = 0;
    twin.extent = LinExpr::dim(0, 64);
    twin.offset = LinExpr::constant(0);
    twin.value_extent = LinExpr::dim(0, 64);
    plan.sym_accesses.push_back(twin);
    return plan;
}

std::vector<std::string>
certify(const KernelPlan &plan, ShapeCertificate *cert_out,
        const VerifierOptions &options)
{
    DiagnosticEngine engine;
    const ShapeCertificate cert =
        verifyKernelPlanSymbolic(plan, oneDim(), engine, options);
    if (cert_out)
        *cert_out = cert;
    std::vector<std::string> codes;
    for (const Diagnostic &d : engine.diagnostics())
        codes.push_back(d.code);
    return codes;
}

TEST(SymbolicMutation, UnmutatedPlanProves)
{
    ShapeCertificate cert;
    EXPECT_TRUE(certify(provenPlan(), &cert, boundsOnly()).empty());
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Proven);
    EXPECT_GT(cert.obligations_proven, 0);
    EXPECT_EQ(cert.obligations_fallback, 0);
    EXPECT_TRUE(cert.covers({100}));
}

TEST(SymbolicMutation, ScratchOutgrowingItsAllocationFiresAS801)
{
    KernelPlan plan = provenPlan();
    OpAccess &a = plan.accesses[0];
    a.kind = AccessKind::Read; // keep AS804 out of the picture
    a.space = AccessSpace::Scratch;
    a.buffer = "scratch:%0";
    a.extent = 64 * 100; // capacity fixed below the range's top
    a.index = linearEnumeration(a.extent, 8, 1, 256);
    a.guard = a.extent;

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS801"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
    EXPECT_FALSE(cert.covers({128}));
}

TEST(SymbolicMutation, ArenaSlotPastTheArenaEndFiresAS802)
{
    KernelPlan plan = provenPlan();
    OpAccess &a = plan.accesses[0];
    a.kind = AccessKind::Read; // writes would also stage (AS821)
    a.space = AccessSpace::Shared;
    a.buffer = "smem";
    a.extent = 1024; // the whole arena
    a.index = AffineIndex{};
    a.index.num_threads = 1024;
    a.guard = -1;

    SymbolicAccess &twin = plan.sym_accesses[0];
    twin.extent = LinExpr::constant(1024);
    twin.offset = LinExpr::dim(0, 1); // slot offset tracks the shape
    twin.value_extent = LinExpr::constant(256);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS802"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, ShrinkingOffsetGoesNegativeFiresAS803)
{
    KernelPlan plan = provenPlan();
    plan.accesses[0].kind = AccessKind::Read;
    // offset = 100 - batch: negative from batch 101 onward.
    plan.sym_accesses[0].offset = LinExpr::dim(0, -1, 100);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS803"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, WriterMissingTheBufferHeadFiresAS804)
{
    KernelPlan plan = provenPlan();
    plan.sym_accesses[0].offset = LinExpr::constant(8);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS804"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, ExtentOutgrowingTheRawSpanFiresAS804)
{
    KernelPlan plan = provenPlan();
    // The claim doubles while the enumeration's raw span stays fixed:
    // above batch 64 the writer cannot reach the tail.
    plan.sym_accesses[0].extent = LinExpr::dim(0, 128);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS804"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, DivergingSharedMappingFiresAS811)
{
    KernelPlan plan = provenPlan();
    plan.accesses.push_back(plan.accesses[0]);
    plan.accesses[1].op_index = 1; // same mapping, different op

    SymbolicAccess twin_b = plan.sym_accesses[0];
    twin_b.access_index = 1;
    // Agrees at the compile shape (64*128 == 8192) but diverges
    // everywhere else in the range.
    twin_b.extent = LinExpr::constant(64 * 128);
    twin_b.value_extent = twin_b.extent;
    plan.sym_accesses.push_back(twin_b);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, racesOnly()),
              (std::vector<std::string>{"AS811"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, ArenaSpansCollidingOffCompileFiresAS812)
{
    KernelPlan plan;
    plan.name = "synthetic";
    plan.launch = LaunchDims{1, 64};

    const auto arena_access = [](int op, AccessKind kind) {
        OpAccess a;
        a.node = op;
        a.op_index = op;
        a.kind = kind;
        a.space = AccessSpace::Shared;
        a.buffer = "smem";
        a.extent = 1024;
        a.index = AffineIndex{};
        a.index.num_threads = 64;
        return a;
    };
    plan.accesses.push_back(arena_access(0, AccessKind::Write));
    plan.accesses.push_back(arena_access(1, AccessKind::Read));
    plan.accesses[1].index.offset = 64; // disjoint at the compile shape

    SymbolicAccess wa;
    wa.access_index = 0;
    wa.extent = LinExpr::constant(1024);
    wa.offset = LinExpr::constant(0);
    wa.value_extent = LinExpr::constant(64);
    SymbolicAccess rb = wa;
    rb.access_index = 1;
    // Read slot slides down as the shape shrinks: batch - 64 is 64 at
    // the compile shape (disjoint) but 1 at batch 65 (overlapping).
    rb.offset = LinExpr::dim(0, 1, -64);
    plan.sym_accesses = {wa, rb};

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, racesOnly()),
              (std::vector<std::string>{"AS812"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, StagedValueOutgrowingItsSlotFiresAS821)
{
    KernelPlan plan = provenPlan();
    OpAccess &a = plan.accesses[0];
    a.space = AccessSpace::Shared; // a staging write into the arena
    a.buffer = "smem";
    a.extent = 1024;
    a.index = AffineIndex{};
    a.index.num_threads = 64; // the slot width
    a.guard = -1;

    SymbolicAccess &twin = plan.sym_accesses[0];
    twin.extent = LinExpr::constant(1024);
    twin.offset = LinExpr::constant(0);
    // 8*batch elements staged across grid 8: fits only up to batch 64.
    twin.value_extent = LinExpr::dim(0, 8);

    ShapeCertificate cert;
    EXPECT_EQ(certify(plan, &cert, boundsOnly()),
              (std::vector<std::string>{"AS821"}));
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Refuted);
}

TEST(SymbolicMutation, MissingSymbolicFormFallsBackWithAS831)
{
    KernelPlan plan = provenPlan();
    plan.sym_accesses.clear(); // nothing to reason with

    ShapeCertificate cert;
    DiagnosticEngine engine;
    const ShapeCertificate result = verifyKernelPlanSymbolic(
        plan, oneDim(), engine, boundsOnly());
    cert = result;
    ASSERT_EQ(engine.size(), 1u);
    EXPECT_EQ(engine.diagnostics()[0].code, "AS831");
    // The escape hatch is a note, never an alarm.
    EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Note);
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Fallback);
    EXPECT_GT(cert.obligations_fallback, 0);
    EXPECT_FALSE(cert.covers({100}));
}

TEST(SymbolicMutation, EmptyDeclaredRangeIsVacuouslyProven)
{
    // lo..hi admits no multiple of the granularity: nothing to refute.
    ShapeDim d = oneDim().front();
    d.lo = 65;
    d.hi = 70;
    d.divisor = 128;
    DiagnosticEngine engine;
    const ShapeCertificate cert =
        verifyKernelPlanSymbolic(provenPlan(), {d}, engine, boundsOnly());
    EXPECT_TRUE(engine.empty());
    EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Proven);
    EXPECT_FALSE(cert.covers({70})); // but it admits no actual shape
}

} // namespace
} // namespace astitch
