/**
 * @file
 * Unit tests for the reference interpreter (the correctness oracle) and
 * the plan executor's strictness.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include <cmath>

#include "compiler/plan_executor.h"
#include "test_graphs.h"

namespace astitch {
namespace {

TEST(Evaluator, ConstantAndChain)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    NodeId y = b.add(b.mul(x, b.constantScalar(2.0f)),
                     b.constantScalar(1.0f));
    g.markOutput(y);

    Evaluator ev(g);
    TensorMap feeds{{x, Tensor(Shape{3}, {1, 2, 3})}};
    const auto outs = ev.run(feeds);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_FLOAT_EQ(outs[0].at(0), 3.0f);
    EXPECT_FLOAT_EQ(outs[0].at(2), 7.0f);
}

TEST(Evaluator, MissingFeedIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    g.markOutput(b.neg(x));
    Evaluator ev(g);
    EXPECT_THROW(ev.run({}), FatalError);
}

TEST(Evaluator, WrongFeedShapeIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    g.markOutput(b.neg(x));
    Evaluator ev(g);
    TensorMap feeds{{x, Tensor::full({4}, 1.0f)}};
    EXPECT_THROW(ev.run(feeds), FatalError);
}

TEST(Evaluator, SoftmaxRowsSumToOne)
{
    Graph g = testing::buildSoftmax(4, 16);
    Evaluator ev(g);
    TensorMap feeds{
        {g.parameters()[0], Tensor::iota({4, 16})}};
    const auto outs = ev.run(feeds);
    ASSERT_EQ(outs.size(), 1u);
    for (int r = 0; r < 4; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < 16; ++c)
            sum += outs[0].at({r, c});
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Evaluator, PowerUsesExponentAttr)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    g.markOutput(b.power(x, 3.0));
    Evaluator ev(g);
    TensorMap feeds{{x, Tensor(Shape{2}, {2.0f, -2.0f})}};
    const auto outs = ev.run(feeds);
    EXPECT_FLOAT_EQ(outs[0].at(0), 8.0f);
    EXPECT_FLOAT_EQ(outs[0].at(1), -8.0f);
}

TEST(Evaluator, SharedOperandUsedTwiceSurvivesLivenessFreeing)
{
    // y = a + a must not free `a` after the first operand visit.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    NodeId a = b.neg(x);
    NodeId y = b.add(a, a);
    g.markOutput(y);
    Evaluator ev(g);
    TensorMap feeds{{x, Tensor(Shape{2}, {1.0f, 2.0f})}};
    const auto outs = ev.run(feeds);
    EXPECT_FLOAT_EQ(outs[0].at(0), -2.0f);
    EXPECT_FLOAT_EQ(outs[0].at(1), -4.0f);
}

TEST(Evaluator, RunAllExposesIntermediates)
{
    auto f = testing::buildFig5(2, 4);
    Evaluator ev(f.graph);
    TensorMap feeds{
        {f.vec, Tensor(Shape{2, 1}, {3.0f, 4.0f})},
        {f.wide, Tensor::full({2, 4}, 1.0f)},
    };
    const auto all = ev.runAll(feeds);
    EXPECT_FLOAT_EQ(all.at(f.power).at(0), 9.0f);
    EXPECT_FLOAT_EQ(all.at(f.add).at({1, 3}), 17.0f);
}

TEST(Evaluator, Fig7MatchesManualComputation)
{
    auto f = testing::buildFig7(2, 4);
    Evaluator ev(f.graph);
    Tensor p1(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor p2(Shape{2, 1}, {1.0f, 2.0f});
    const auto all =
        ev.runAll({{f.param1, p1}, {f.param2, p2}});

    // add.1 = 2*p1; reduce.1 row sums = {20, 52}.
    EXPECT_FLOAT_EQ(all.at(f.reduce1).at(0), 20.0f);
    EXPECT_FLOAT_EQ(all.at(f.reduce1).at(1), 52.0f);
    // divide.1 row 0 = {2,4,6,8}/20.
    EXPECT_NEAR(all.at(f.divide1).at({0, 3}), 8.0f / 20.0f, 1e-6f);
    // power.1 = {1, 4}; reduce.2 row r = sum(divide.1[r,:]) + 4*p2^2.
    EXPECT_NEAR(all.at(f.reduce2).at(0), 1.0f + 4.0f, 1e-5f);
    EXPECT_NEAR(all.at(f.reduce2).at(1), 1.0f + 16.0f, 1e-5f);
    // multiply.1 = reduce.2 * power.1.
    EXPECT_NEAR(all.at(f.multiply1).at(1), 17.0f * 4.0f, 1e-4f);
}

TEST(PlanExecutor, RejectsUnmaterializedInput)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    NodeId y = b.neg(x);
    g.markOutput(y);

    CompiledCluster compiled;
    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 1.0});
    plan.ops.push_back(ScheduledOp{y, 1.0, BufferSpace::Output, {}});
    plan.outputs.push_back(y);
    compiled.kernels.push_back(plan);

    TensorMap env; // x missing
    EXPECT_THROW(executeCompiledCluster(g, compiled, env), FatalError);

    env.emplace(x, Tensor::full({2}, 2.0f));
    EXPECT_NO_THROW(executeCompiledCluster(g, compiled, env));
    EXPECT_FLOAT_EQ(env.at(y).at(0), -2.0f);
}

TEST(PlanExecutor, RejectsOpScheduledBeforeOperand)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    NodeId a = b.neg(x);
    NodeId c = b.abs(a);
    g.markOutput(c);

    CompiledCluster compiled;
    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 1.0});
    // Wrong order: c before a.
    plan.ops.push_back(ScheduledOp{c, 1.0, BufferSpace::Output, {}});
    plan.ops.push_back(ScheduledOp{a, 1.0, BufferSpace::Register, {}});
    plan.outputs.push_back(c);
    compiled.kernels.push_back(plan);

    TensorMap env{{x, Tensor::full({2}, 1.0f)}};
    EXPECT_THROW(executeCompiledCluster(g, compiled, env), FatalError);
}

TEST(PlanExecutor, RegisterValuesDoNotCrossKernels)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    NodeId a = b.neg(x);
    NodeId c = b.abs(a);
    g.markOutput(c);

    CompiledCluster compiled;
    KernelPlan k1;
    k1.name = "k1";
    k1.inputs.push_back(KernelInput{x, 1.0});
    // `a` stays in registers: never materialized.
    k1.ops.push_back(ScheduledOp{a, 1.0, BufferSpace::Register, {}});
    KernelPlan k2;
    k2.name = "k2";
    k2.inputs.push_back(KernelInput{a, 1.0});
    k2.ops.push_back(ScheduledOp{c, 1.0, BufferSpace::Output, {}});
    k2.outputs.push_back(c);
    compiled.kernels.push_back(k1);
    compiled.kernels.push_back(k2);

    TensorMap env{{x, Tensor::full({2}, 1.0f)}};
    EXPECT_THROW(executeCompiledCluster(g, compiled, env), FatalError);
}

TEST(PlanExecutor, UndeclaredOutputIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    NodeId y = b.neg(x);
    g.markOutput(y);

    CompiledCluster compiled;
    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 1.0});
    plan.ops.push_back(ScheduledOp{y, 1.0, BufferSpace::Output, {}});
    // outputs list intentionally left empty.
    compiled.kernels.push_back(plan);

    TensorMap env{{x, Tensor::full({2}, 1.0f)}};
    EXPECT_THROW(executeCompiledCluster(g, compiled, env), FatalError);
}

} // namespace
} // namespace astitch
