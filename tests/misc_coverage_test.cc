/**
 * @file
 * Broad coverage tests for surfaces not exercised elsewhere: evaluator
 * op corners, graph printing, report summaries, GPU spec presets,
 * session options, CUDA emission over the new ops, disconnected
 * remote-stitched clusters, and work-descriptor accounting.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "core/cuda_emitter.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

// ---------------------------------------------------------------------
// Evaluator corners
// ---------------------------------------------------------------------

TEST(EvaluatorOps, SelectCompareMinimumErf)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.parameter({4});
    NodeId pred = b.compareGT(x, y);
    NodeId sel = b.select(pred, b.minimum(x, y), b.erf(x));
    g.markOutput(sel);

    Evaluator ev(g);
    TensorMap feeds{
        {x, Tensor(Shape{4}, {1.0f, -2.0f, 3.0f, 0.0f})},
        {y, Tensor(Shape{4}, {0.0f, 5.0f, 3.0f, -1.0f})},
    };
    const auto out = ev.run(feeds);
    // x>y ? min(x,y) : erf(x)
    EXPECT_FLOAT_EQ(out[0].at(0), 0.0f);                 // 1>0: min=0
    EXPECT_FLOAT_EQ(out[0].at(1), std::erf(-2.0f));      // 1<5: erf
    EXPECT_FLOAT_EQ(out[0].at(2), std::erf(3.0f));       // equal: erf
    EXPECT_FLOAT_EQ(out[0].at(3), -1.0f);                // 0>-1: min
}

TEST(EvaluatorOps, ConcatThroughBackends)
{
    Graph g;
    GraphBuilder b(g);
    NodeId a = b.parameter({2, 3});
    NodeId c = b.parameter({2, 3});
    NodeId cat = b.concat({b.tanh(a), b.sigmoid(c)}, 0);
    g.markOutput(cat);
    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto report = session.run(feeds);
    EXPECT_TRUE(report.outputs[0].allClose(expected[0]));
    EXPECT_EQ(report.outputs[0].shape(), (Shape{4, 3}));
}

TEST(EvaluatorOps, SqrtLogAbsNeg)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    g.markOutput(b.sqrt(b.abs(b.neg(x))));
    g.markOutput(b.log(b.add(b.abs(x), b.constantScalar(1.0f))));
    Evaluator ev(g);
    TensorMap feeds{{x, Tensor(Shape{3}, {-4.0f, 9.0f, 0.0f})}};
    const auto out = ev.run(feeds);
    EXPECT_FLOAT_EQ(out[0].at(0), 2.0f);
    EXPECT_FLOAT_EQ(out[0].at(1), 3.0f);
    EXPECT_FLOAT_EQ(out[1].at(1), std::log(10.0f));
}

// ---------------------------------------------------------------------
// Printing / reporting
// ---------------------------------------------------------------------

TEST(GraphPrinting, ToStringListsOpsAndOutputs)
{
    Graph g("demo");
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    g.markOutput(b.tanh(x));
    const std::string text = g.toString();
    EXPECT_NE(text.find("graph demo"), std::string::npos);
    EXPECT_NE(text.find("tanh"), std::string::npos);
    EXPECT_NE(text.find("[output]"), std::string::npos);
}

TEST(RunReport, SummaryContainsKeyNumbers)
{
    Graph g = testing::buildSoftmax(64, 64);
    Session session(g, std::make_unique<XlaBackend>());
    const RunReport report = session.profile();
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("xla"), std::string::npos);
    EXPECT_NE(summary.find("mem kernels"), std::string::npos);
    EXPECT_NE(summary.find("overhead"), std::string::npos);
}

TEST(LaunchDimsPrinting, TripleChevronFormat)
{
    EXPECT_EQ((LaunchDims{160, 1024}).toString(), "<<<160, 1024>>>");
}

TEST(GpuSpecs, PresetsDifferMeaningfully)
{
    const GpuSpec v100 = GpuSpec::v100();
    const GpuSpec t4 = GpuSpec::t4();
    const GpuSpec a100 = GpuSpec::a100();
    EXPECT_GT(v100.mem_bandwidth_gbps, t4.mem_bandwidth_gbps);
    EXPECT_GT(a100.mem_bandwidth_gbps, v100.mem_bandwidth_gbps);
    EXPECT_GT(a100.matmul_throughput_multiplier, 1.0);
    EXPECT_LT(t4.max_threads_per_sm, v100.max_threads_per_sm);
}

TEST(GpuSpecs, T4WaveIsSmallerThanV100)
{
    const Occupancy v = computeOccupancy(GpuSpec::v100(), 1024, 32, 0);
    const Occupancy t = computeOccupancy(GpuSpec::t4(), 1024, 32, 0);
    EXPECT_GT(v.blocksPerWave(GpuSpec::v100()),
              t.blocksPerWave(GpuSpec::t4()));
}

// ---------------------------------------------------------------------
// Session options
// ---------------------------------------------------------------------

TEST(SessionOptions, MaxClusterNodesBoundsRemoteStitching)
{
    Graph g;
    GraphBuilder b(g);
    for (int i = 0; i < 8; ++i)
        g.markOutput(b.tanh(b.parameter({32})));

    SessionOptions unbounded;
    Session all(g, std::make_unique<AStitchBackend>(), unbounded);
    EXPECT_EQ(all.profile().num_clusters, 1);

    SessionOptions bounded;
    bounded.max_cluster_nodes = 2;
    Session some(g, std::make_unique<AStitchBackend>(), bounded);
    EXPECT_EQ(some.profile().num_clusters, 4);
}

TEST(SessionOptions, DifferentGpusChangeTimes)
{
    Graph g = testing::buildSoftmax(4096, 512);
    SessionOptions v100;
    SessionOptions t4;
    t4.spec = GpuSpec::t4();
    Session fast(g, std::make_unique<AStitchBackend>(), v100);
    Session slow(g, std::make_unique<AStitchBackend>(), t4);
    // T4 has ~1/3 the bandwidth: the same plan runs slower.
    EXPECT_GT(slow.profile().end_to_end_us,
              1.5 * fast.profile().end_to_end_us);
}

TEST(SessionOptions, OptimizerComposesWithJitCache)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64});
    NodeId dup1 = b.exp(x);
    NodeId dup2 = b.exp(x);
    g.markOutput(b.add(dup1, dup2));

    SessionOptions options;
    options.enable_optimizer = true;
    options.use_jit_cache = true;
    Session s1(g, std::make_unique<AStitchBackend>(), options);
    Session s2(g, std::make_unique<AStitchBackend>(), options);
    const auto r1 = s1.profile();
    const auto r2 = s2.profile();
    EXPECT_DOUBLE_EQ(r1.end_to_end_us, r2.end_to_end_us);
    // CSE merged the duplicate exp before compilation.
    EXPECT_LT(s1.activeGraph().numNodes(), g.numNodes());
}

// ---------------------------------------------------------------------
// Remote-stitched disconnected clusters
// ---------------------------------------------------------------------

TEST(RemoteStitched, DisconnectedPiecesGetSeparateGroups)
{
    // Two independent softmaxes merge into one stitch op; its dominant
    // analysis must seed groups inside each disconnected piece.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64, 64});
    NodeId y = b.parameter({32, 128});
    b.output(b.softmax(x));
    b.output(b.softmax(y));
    auto clusters =
        remoteStitch(g, findMemoryIntensiveClusters(g));
    ASSERT_EQ(clusters.size(), 1u);
    const auto analysis = analyzeDominants(g, clusters[0], true);
    // Two reduce groups per softmax.
    int reduce_groups = 0;
    for (const auto &grp : analysis.groups)
        reduce_groups += isReduce(g.node(grp.dominant).kind());
    EXPECT_EQ(reduce_groups, 4);
    // Functional execution through the single stitched kernel.
    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto report = session.run(feeds);
    EXPECT_EQ(report.memKernelCount(), 1);
    EXPECT_TRUE(report.outputs[0].allClose(expected[0], 1e-4, 1e-5));
    EXPECT_TRUE(report.outputs[1].allClose(expected[1], 1e-4, 1e-5));
}

// ---------------------------------------------------------------------
// Work-descriptor accounting
// ---------------------------------------------------------------------

TEST(WorkDesc, LoadFactorScalesReads)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({1024});
    NodeId y = b.tanh(x);
    g.markOutput(y);

    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 3.0});
    plan.ops.push_back(ScheduledOp{y, 1.0, BufferSpace::Output, {}});
    plan.outputs.push_back(y);
    const KernelWorkDesc desc = workDescFor(g, plan);
    EXPECT_DOUBLE_EQ(desc.bytes_read, 3.0 * 1024 * 4);
    EXPECT_DOUBLE_EQ(desc.bytes_written, 1024 * 4);
}

TEST(WorkDesc, GlobalSpaceCountsWriteAndReadBack)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({1024});
    NodeId mid = b.tanh(x);
    NodeId out = b.exp(mid);
    g.markOutput(out);

    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 1.0});
    plan.ops.push_back(ScheduledOp{mid, 1.0, BufferSpace::Global, {}});
    plan.ops.push_back(ScheduledOp{out, 1.0, BufferSpace::Output, {}});
    plan.outputs.push_back(out);
    const KernelWorkDesc desc = workDescFor(g, plan);
    // input + global read-back; output + global write.
    EXPECT_DOUBLE_EQ(desc.bytes_read, 2.0 * 1024 * 4);
    EXPECT_DOUBLE_EQ(desc.bytes_written, 2.0 * 1024 * 4);
}

TEST(WorkDesc, RecomputeScalesInstructionsNotTraffic)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({128});
    NodeId y = b.tanh(x);
    g.markOutput(y);

    KernelPlan plan;
    plan.name = "k";
    plan.inputs.push_back(KernelInput{x, 1.0});
    plan.ops.push_back(ScheduledOp{y, 8.0, BufferSpace::Output, {}});
    plan.outputs.push_back(y);
    const KernelWorkDesc one = workDescFor(g, plan);
    plan.ops[0].recompute_factor = 1.0;
    const KernelWorkDesc base = workDescFor(g, plan);
    EXPECT_DOUBLE_EQ(one.fp_instructions, 8.0 * base.fp_instructions);
    EXPECT_DOUBLE_EQ(one.bytes_written, base.bytes_written);
}

// ---------------------------------------------------------------------
// CUDA emission over the extended op set
// ---------------------------------------------------------------------

TEST(CudaEmission, HandlesGatherSliceAndPad)
{
    Graph g;
    GraphBuilder b(g);
    NodeId table = b.parameter({64, 8});
    NodeId ids = b.constant(Tensor::iota({16}));
    NodeId e = b.gather(table, ids);
    NodeId s = b.slice(b.sigmoid(e), 0, 8);
    g.markOutput(b.pad(s, {16, 8}));
    auto clusters = findMemoryIntensiveClusters(g);
    const CudaEmission emission =
        emitStitchKernelCuda(g, clusters[0], kV100);
    EXPECT_NE(emission.source.find("v_gather"), std::string::npos);
    EXPECT_NE(emission.source.find("v_slice"), std::string::npos);
    EXPECT_NE(emission.source.find("v_pad"), std::string::npos);
}

TEST(CudaEmission, EveryWorkloadClusterEmits)
{
    // The emitter must not choke on any production cluster.
    for (const auto &spec : workloads::inferenceWorkloads()) {
        const Graph graph = spec.build();
        auto clusters =
            remoteStitch(graph, findMemoryIntensiveClusters(graph));
        for (std::size_t i = 0; i < std::min<std::size_t>(3,
                                                          clusters.size());
             ++i) {
            const CudaEmission emission =
                emitStitchKernelCuda(graph, clusters[i], kV100);
            EXPECT_NE(emission.source.find("__global__"),
                      std::string::npos)
                << spec.name << " cluster " << i;
        }
    }
}

} // namespace
} // namespace astitch
