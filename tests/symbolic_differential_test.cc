/**
 * @file
 * Differential property test for shape-parametric (AS8xx) verification.
 *
 * The property: a Proven ShapeCertificate must never contradict the
 * concrete AS7xx verifier. For every dynamic workload and device spec,
 * compile one bucket symbolically, then re-build and re-verify the
 * model concretely at sampled shapes across the bucket's declared
 * range (both endpoints included). Zero false negatives are tolerated:
 * a shape the certificate covers must verify clean concretely. AS831
 * fallbacks are permitted — they are the verifier's escape hatch — but
 * are counted and reported so a regression that silently gives up on
 * everything is visible.
 */
#include <gtest/gtest.h>

#include <iostream>
#include <set>
#include <vector>

#include "analysis/kernel_verifier.h"
#include "core/astitch_backend.h"
#include "runtime/dynamic_session.h"
#include "workloads/common.h"

namespace astitch {
namespace {

struct DeviceCase
{
    const char *name;
    GpuSpec spec;
};

std::vector<DeviceCase>
deviceCases()
{
    return {{"V100", GpuSpec::v100()},
            {"T4", GpuSpec::t4()},
            {"A100", GpuSpec::a100()}};
}

/** >= 8 admissible shapes across [lo, hi] including both endpoints
 * (fewer only when the range holds fewer admissible values). */
std::vector<std::int64_t>
sampleShapes(std::int64_t lo, std::int64_t hi, std::int64_t divisor)
{
    std::set<std::int64_t> samples;
    const auto admit = [&](std::int64_t v) {
        if (v >= lo && v <= hi && v % divisor == 0)
            samples.insert(v);
    };
    admit(lo);
    admit(hi);
    for (int k = 1; k <= 12 &&
                    samples.size() < 8; ++k) {
        const std::int64_t raw = lo + (hi - lo) * k / 13;
        admit((raw + divisor - 1) / divisor * divisor);
    }
    // Dense fill for coarse-grained dims where the spread lands on few
    // distinct multiples.
    for (std::int64_t v = (lo + divisor - 1) / divisor * divisor;
         v <= hi && samples.size() < 8; v += divisor)
        admit(v);
    return {samples.begin(), samples.end()};
}

/** Number of Error-severity AS7xx findings a concrete compile of
 * @p graph produces under @p spec. */
int
concreteAccessErrors(const Graph &graph, const GpuSpec &spec)
{
    SessionOptions options;
    options.spec = spec;
    Session session(graph, std::make_unique<AStitchBackend>(), options);
    session.compile();
    int errors = 0;
    for (const Diagnostic &d : session.diagnostics().diagnostics()) {
        if (d.severity == Severity::Error && d.code.rfind("AS7", 0) == 0)
            ++errors;
    }
    return errors;
}

TEST(SymbolicDifferential, ProvenCertificatesAgreeWithConcreteVerifier)
{
    int proven_buckets = 0;
    int fallback_buckets = 0;
    int unsymbolized_buckets = 0;
    int shapes_checked = 0;

    for (const workloads::DynamicWorkloadSpec &wl :
         workloads::dynamicInferenceWorkloads()) {
        for (const DeviceCase &device : deviceCases()) {
            std::cout << "[differential] " << wl.name << " on "
                      << device.name << std::endl;
            DynamicSessionOptions options;
            options.session.spec = device.spec;
            options.bucket_to_power_of_two = true;
            options.dim_names = {wl.dim_name};
            options.dim_divisors = {wl.divisor};
            DynamicSession dynamic(wl.build,
                                   [] {
                                       return std::make_unique<
                                           AStitchBackend>();
                                   },
                                   options);

            // One bucket, compiled symbolically for its whole range.
            dynamic.profile({wl.default_dim});
            const DynamicSession::SymbolicStats stats =
                dynamic.symbolicStats();
            proven_buckets += stats.buckets_proven;
            fallback_buckets += stats.buckets_fallback;
            unsymbolized_buckets += stats.buckets_unsymbolized;

            // The seed workloads must never *refute*: a refutation
            // would be a false alarm (the concrete compile of every
            // served shape is clean, as checked below).
            const DiagnosticEngine merged = dynamic.diagnostics();
            for (const Diagnostic &d : merged.diagnostics()) {
                if (d.code.rfind("AS8", 0) == 0) {
                    EXPECT_NE(d.severity, Severity::Error)
                        << wl.name << " on " << device.name << ": "
                        << d.toString();
                }
            }

            if (stats.buckets_proven == 0)
                continue; // fallback buckets re-verify concretely

            // Differential oracle: every admissible shape in the
            // certified range must also verify clean when built and
            // compiled concretely at exactly that shape.
            const std::vector<std::int64_t> key =
                dynamic.bucketFor({wl.default_dim});
            const std::int64_t hi = key.at(0);
            const std::int64_t lo =
                std::max<std::int64_t>(1, hi / 2 + 1);
            for (std::int64_t shape :
                 sampleShapes(lo, hi, wl.divisor)) {
                EXPECT_EQ(concreteAccessErrors(wl.build({shape}),
                                               device.spec),
                          0)
                    << wl.name << " on " << device.name
                    << " at shape " << shape
                    << ": certificate covers a shape the concrete "
                       "verifier rejects (false negative)";
                ++shapes_checked;
            }
        }
    }

    std::cout << "[differential] proven=" << proven_buckets
              << " fallback=" << fallback_buckets
              << " unsymbolized=" << unsymbolized_buckets
              << " shapes_checked=" << shapes_checked << "\n";
    // The sweep must exercise the certified path for real: if nothing
    // proves, the feature is dead and the differential test vacuous.
    EXPECT_GT(proven_buckets, 0);
    EXPECT_GE(shapes_checked, 8);
}

/** Certified serves must skip the verifier; shapes outside any
 * certificate must re-verify exactly once each. */
TEST(SymbolicDifferential, CertifiedBucketsSkipReverification)
{
    const workloads::DynamicWorkloadSpec wl =
        workloads::dynamicInferenceWorkloads().at(2); // BERT
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    options.dim_names = {wl.dim_name};
    DynamicSession dynamic(
        wl.build, [] { return std::make_unique<AStitchBackend>(); },
        options);

    const std::int64_t runs_before = verifierPlanRuns();
    dynamic.profile({100});
    const std::int64_t runs_compile = verifierPlanRuns();
    // Re-serving shapes inside the certified range runs no verifier.
    dynamic.profile({100});
    dynamic.profile({90});
    dynamic.profile({128});
    const DynamicSession::SymbolicStats stats = dynamic.symbolicStats();
    if (stats.buckets_proven == 1) {
        EXPECT_EQ(verifierPlanRuns(), runs_compile);
        EXPECT_EQ(stats.certified_hits, 4);
        EXPECT_EQ(stats.concrete_reverifications, 0);
    } else {
        // Fallback path: each distinct shape re-verifies once, except
        // the bucket key itself ({128}) — the compile already verified
        // it concretely.
        EXPECT_GT(verifierPlanRuns(), runs_compile);
        EXPECT_EQ(stats.concrete_reverifications, 2);
    }
    EXPECT_GT(runs_compile, runs_before); // compile itself verified
}

} // namespace
} // namespace astitch
