/**
 * @file
 * Tests of the workload generators: structural expectations (op mixes,
 * irregular shapes) and functional evaluability of the tiny variants.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/clustering.h"
#include "compiler/evaluator.h"
#include "workloads/asr.h"
#include "workloads/bert.h"
#include "workloads/common.h"
#include "workloads/crnn.h"
#include "workloads/dien.h"
#include "workloads/random_graph.h"
#include "workloads/transformer.h"

namespace astitch {
namespace {

using namespace workloads;

struct OpCensus
{
    int reduces = 0;
    int heavy = 0;
    int broadcasts = 0;
    int matmuls = 0;
    int total = 0;
};

OpCensus
census(const Graph &g)
{
    OpCensus c;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        const OpKind kind = g.node(id).kind();
        c.reduces += isReduce(kind);
        c.heavy += isHeavyElementwise(kind);
        c.broadcasts += kind == OpKind::Broadcast;
        c.matmuls += isComputeIntensive(kind);
        ++c.total;
    }
    return c;
}

TEST(Workloads, BertHasTransformerOpMix)
{
    Graph g = buildBert(BertConfig::inference());
    const OpCensus c = census(g);
    // 4 layers x (softmax 2 reduces + 2 layernorms x 2 reduces) + final.
    EXPECT_GE(c.reduces, 4 * 6);
    EXPECT_GT(c.heavy, 10);      // exp, rsqrt, tanh, gelu chains
    EXPECT_GT(c.broadcasts, 20);
    EXPECT_GE(c.matmuls, 4 * 6); // qkv, scores, ctx, proj, ffn x2
}

TEST(Workloads, TransformerContainsFig6bShape)
{
    Graph g = buildTransformer(TransformerConfig::inference());
    bool found = false;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        const Node &n = g.node(id);
        if (isReduce(n.kind())) {
            const Shape &in = g.node(n.operands()[0]).shape();
            if (in.rank() == 2 && in.dim(0) == 64 && in.dim(1) == 30000)
                found = true;
        }
    }
    EXPECT_TRUE(found) << "the <64,30000> production reduce must appear";
}

TEST(Workloads, DienContainsFig6aShape)
{
    Graph g = buildDien(DienConfig::inference());
    bool found = false;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        const Node &n = g.node(id);
        if (isReduce(n.kind())) {
            const Shape &in = g.node(n.operands()[0]).shape();
            if (in.rank() == 2 && in.dim(0) == 750000 && in.dim(1) == 32)
                found = true;
        }
    }
    EXPECT_TRUE(found) << "the <750000,32> production reduce must appear";
}

TEST(Workloads, CrnnIsSmallOpDominated)
{
    Graph g = buildCrnn(CrnnConfig::inference());
    const auto clusters = findMemoryIntensiveClusters(g);
    // Many small clusters between the per-step LSTM GEMMs.
    EXPECT_GT(clusters.size(), 50u);
}

TEST(Workloads, AllInferenceModelsBuildAndCluster)
{
    for (const auto &spec : inferenceWorkloads()) {
        Graph g = spec.build();
        EXPECT_GT(g.numNodes(), 50) << spec.name;
        EXPECT_FALSE(g.outputs().empty()) << spec.name;
        const auto clusters = findMemoryIntensiveClusters(g);
        EXPECT_FALSE(clusters.empty()) << spec.name;
        // No cluster may contain a compute-intensive or source op.
        for (const auto &c : clusters) {
            for (NodeId n : c.nodes) {
                EXPECT_TRUE(isMemoryIntensive(g.node(n).kind()))
                    << spec.name;
            }
        }
    }
}

TEST(Workloads, TrainingVariantsAreLargerAndEmitGradients)
{
    Graph infer = buildBert(BertConfig::inference());
    Graph train = buildBert(BertConfig::training());
    EXPECT_GT(train.outputs().size(), infer.outputs().size());

    Graph t_train = buildTransformer(TransformerConfig::training());
    EXPECT_GT(t_train.outputs().size(), 1u);
}

TEST(Workloads, TinyVariantsEvaluateFunctionally)
{
    const std::vector<Graph> graphs = [] {
        std::vector<Graph> gs;
        gs.push_back(buildBert(BertConfig::tiny()));
        gs.push_back(buildTransformer(TransformerConfig::tiny()));
        gs.push_back(buildDien(DienConfig::tiny()));
        gs.push_back(buildAsr(AsrConfig::tiny()));
        gs.push_back(buildCrnn(CrnnConfig::tiny()));
        return gs;
    }();
    for (const Graph &g : graphs) {
        const TensorMap feeds = makeRandomFeeds(g);
        const auto outs = Evaluator(g).run(feeds);
        ASSERT_FALSE(outs.empty()) << g.name();
        for (const Tensor &t : outs) {
            for (float v : t.data())
                EXPECT_FALSE(std::isnan(v)) << g.name();
        }
    }
}

TEST(Workloads, RandomFeedsAreDeterministic)
{
    Graph g = buildBert(BertConfig::tiny());
    const TensorMap a = makeRandomFeeds(g, 42);
    const TensorMap b = makeRandomFeeds(g, 42);
    for (const auto &[id, tensor] : a)
        EXPECT_TRUE(tensor.allClose(b.at(id), 0, 0));
}

TEST(RandomGraph, HitsRequestedSizeAndStaysValid)
{
    RandomGraphConfig config;
    config.num_nodes = 500;
    Graph g = buildRandomGraph(config);
    EXPECT_GE(g.numNodes(), 500);
    EXPECT_FALSE(g.outputs().empty());
    // Creation order must be topological (operands before users).
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        for (NodeId op : g.node(id).operands())
            EXPECT_LT(op, id);
    }
}

TEST(RandomGraph, DeterministicPerSeed)
{
    RandomGraphConfig config;
    config.num_nodes = 200;
    config.seed = 9;
    Graph a = buildRandomGraph(config);
    Graph b = buildRandomGraph(config);
    ASSERT_EQ(a.numNodes(), b.numNodes());
    for (NodeId id = 0; id < a.numNodes(); ++id) {
        EXPECT_EQ(a.node(id).kind(), b.node(id).kind());
        EXPECT_EQ(a.node(id).shape(), b.node(id).shape());
    }
}

TEST(RandomGraph, ContainsBothHostilePatterns)
{
    RandomGraphConfig config;
    config.num_nodes = 1000;
    Graph g = buildRandomGraph(config);
    const auto c = census(g);
    EXPECT_GT(c.reduces, 10);
    EXPECT_GT(c.heavy, 10);
    EXPECT_GT(c.broadcasts, 10);
}

} // namespace
} // namespace astitch
