/**
 * @file
 * Autodiff tests: every gradient rule is verified against central
 * finite differences, plus structural and end-to-end checks.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "compiler/evaluator.h"
#include "core/astitch_backend.h"
#include "opt/autodiff.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "workloads/common.h"

namespace astitch {
namespace {

/**
 * Check d(loss)/d(param) against central differences for every element
 * of @p param, on the graph produced by @p build (which must return the
 * scalar loss node).
 */
void
checkGradient(const std::function<NodeId(GraphBuilder &, NodeId)> &build,
              const Shape &param_shape, double tolerance = 2e-2,
              float step = 1e-2f)
{
    Graph g("grad_check");
    GraphBuilder b(g);
    NodeId param = b.parameter(param_shape, "theta");
    NodeId loss = build(b, param);
    g.markOutput(loss);
    const auto grads = buildGradients(b, loss, {param});
    g.markOutput(grads[0]);

    TensorMap feeds = workloads::makeRandomFeeds(g, 31);
    // Keep values away from kinks/singularities.
    for (auto &v : feeds.at(param).data())
        v = 0.4f + 0.1f * v;

    Evaluator ev(g);
    const auto outs = ev.run(feeds);
    const Tensor &analytic = outs[1];

    for (std::int64_t i = 0; i < feeds.at(param).numElements(); ++i) {
        TensorMap plus = feeds;
        TensorMap minus = feeds;
        plus.at(param).set(i, plus.at(param).at(i) + step);
        minus.at(param).set(i, minus.at(param).at(i) - step);
        const double numeric =
            (ev.run(plus)[0].at(0) - ev.run(minus)[0].at(0)) /
            (2.0 * step);
        EXPECT_NEAR(analytic.at(i), numeric,
                    tolerance * (1.0 + std::abs(numeric)))
            << "element " << i;
    }
}

TEST(GradCheck, ElementwiseChain)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId y = b.tanh(b.mul(x, b.constantScalar(2.0f)));
            return b.reduceSum(b.mul(y, y), {0});
        },
        Shape{5});
}

TEST(GradCheck, HeavyUnaries)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId y = b.add(
                b.exp(b.neg(x)),
                b.add(b.log(x), b.add(b.sqrt(x), b.rsqrt(x))));
            y = b.add(y, b.add(b.sigmoid(x), b.erf(x)));
            return b.reduceSum(y, {0});
        },
        Shape{4});
}

TEST(GradCheck, PowerAndAbs)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            return b.reduceSum(b.add(b.power(x, 3.0), b.abs(x)), {0});
        },
        Shape{4});
}

TEST(GradCheck, BinaryWithBroadcast)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            // x[3,1] broadcasts against a constant [3,4].
            NodeId c = b.constant(Tensor::iota({3, 4}));
            NodeId y = b.mul(b.add(x, c), b.sub(x, c));
            return b.reduceSum(y, {0, 1});
        },
        Shape{3, 1});
}

TEST(GradCheck, DivMaximumMinimumSelect)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId c = b.constant(Tensor::full({4}, 0.7f));
            NodeId y = b.div(c, x);
            y = b.add(y, b.maximum(x, c));
            y = b.add(y, b.minimum(x, c));
            y = b.add(y, b.select(b.compareGT(x, c), b.mul(x, x), c));
            return b.reduceSum(y, {0});
        },
        Shape{4});
}

TEST(GradCheck, ReduceSumMeanMax)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId s = b.reduceSum(x, {1});
            NodeId m = b.reduceMean(x, {1});
            NodeId mx = b.reduceMax(x, {1});
            return b.reduceSum(b.add(b.mul(s, m), mx), {0});
        },
        Shape{3, 4});
}

TEST(GradCheck, SoftmaxAndLayerNorm)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId probs = b.softmax(x);
            NodeId gamma = b.constant(Tensor::full({4}, 1.2f));
            NodeId beta = b.constant(Tensor::full({4}, 0.1f));
            NodeId normed = b.layerNorm(probs, gamma, beta);
            return b.reduceSum(b.mul(normed, normed), {0, 1});
        },
        // rsqrt over the tiny softmax variance is steep: a small step
        // keeps the central-difference truncation error in tolerance.
        Shape{2, 4}, 5e-2, 1e-3f);
}

TEST(GradCheck, MatmulBothSides)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId w = b.constant(Tensor::iota({3, 2}));
            NodeId y = b.matmul(x, w); // [2,3]x[3,2]
            NodeId z = b.matmul(w, x); // [3,2]x[2,3]
            return b.add(b.reduceSum(b.mul(y, y), {0, 1}),
                         b.reduceSum(z, {0, 1}));
        },
        Shape{2, 3});
}

TEST(GradCheck, BatchMatmul)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId w = b.constant(Tensor::iota({2, 3, 2}));
            NodeId y = b.batchMatmul(x, w); // [2,2,3]x[2,3,2]
            return b.reduceSum(b.mul(y, y), {0, 1, 2});
        },
        Shape{2, 2, 3});
}

TEST(GradCheck, Conv3x3BothSides)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId w = b.constant(Tensor::iota({18, 2}));
            NodeId y = b.conv3x3(x, w); // x[3,2], w[18,2]
            return b.reduceSum(b.mul(y, y), {0, 1});
        },
        Shape{3, 2}, 5e-2);
    // Weight side.
    checkGradient(
        [](GraphBuilder &b, NodeId w) {
            NodeId x = b.constant(Tensor::iota({3, 2}));
            NodeId y = b.conv3x3(x, w);
            return b.reduceSum(y, {0, 1});
        },
        Shape{18, 2}, 5e-2);
}

TEST(GradCheck, DataMovement)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId t = b.transpose(b.reshape(x, {2, 6}), {1, 0});
            NodeId s = b.slice(t, 1, 3); // rows 1..3 of [6,2]
            NodeId wide =
                b.broadcastTo(b.reshape(s, {3, 2, 1}), {3, 2, 4});
            return b.reduceSum(wide, {0, 1, 2});
        },
        Shape{3, 4});
}

TEST(GradCheck, ConcatDim0)
{
    checkGradient(
        [](GraphBuilder &b, NodeId x) {
            NodeId c = b.constant(Tensor::iota({2, 3}));
            NodeId cat = b.concat({b.mul(x, x), c, x}, 0);
            return b.reduceSum(b.mul(cat, cat), {0, 1});
        },
        Shape{2, 3});
}

// ---------------------------------------------------------------------
// Structural / API behaviour
// ---------------------------------------------------------------------

TEST(Autodiff, NonScalarLossIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.tanh(x);
    EXPECT_THROW(buildGradients(b, y, {x}), FatalError);
}

TEST(Autodiff, IndependentInputGetsZeroGradient)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    NodeId unused = b.parameter({2});
    NodeId loss = b.reduceSum(b.mul(x, x), {0});
    const auto grads = buildGradients(b, loss, {unused});
    Evaluator ev(g);
    g.markOutput(grads[0]);
    TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto out = ev.run(feeds);
    for (float v : out[0].data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Autodiff, GatherTableGradientIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId table = b.parameter({8, 2});
    NodeId ids = b.constant(Tensor(Shape{3}, {0, 1, 2}));
    NodeId loss =
        b.reduceSum(b.gather(table, ids), {0, 1});
    EXPECT_THROW(buildGradients(b, loss, {table}), FatalError);
}

TEST(Autodiff, ParameterGradientsSkipGatherTables)
{
    Graph g;
    GraphBuilder b(g);
    NodeId table = b.parameter({8, 2});
    NodeId ids = b.constant(Tensor(Shape{3}, {0, 1, 2}));
    NodeId w = b.parameter({3, 2});
    NodeId loss = b.reduceSum(
        b.mul(b.gather(table, ids), w), {0, 1});
    const auto grads = buildParameterGradients(b, loss);
    EXPECT_EQ(grads.count(table), 0u);
    EXPECT_EQ(grads.count(w), 1u);
}

TEST(Autodiff, GradientGraphCompilesUnderEveryScheme)
{
    // The backward graph is itself a memory-intensive graph the
    // compilers must handle; verify value equivalence through AStitch.
    Graph g("train_step");
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 16});
    NodeId w = b.parameter({16, 16});
    NodeId h = b.softmax(b.matmul(x, w));
    NodeId loss = b.reduceMean(b.mul(h, h), {0, 1});
    g.markOutput(loss);
    for (const auto &[param, grad] : buildParameterGradients(b, loss))
        g.markOutput(grad);

    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto report = session.run(feeds);
    ASSERT_EQ(report.outputs.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(report.outputs[i].allClose(expected[i], 1e-4, 1e-5))
            << "output " << i;
    }
}

TEST(Autodiff, SgdLoopConvergesThroughCompiledKernels)
{
    // A miniature version of examples/training_loop.cpp as a test: the
    // loss of an MLP regression must drop by 5x over 40 SGD steps when
    // every iteration runs through the AStitch-compiled plans.
    Graph graph("sgd");
    GraphBuilder b(graph);
    const int batch = 16, in_dim = 4, hidden = 8;
    NodeId x = b.parameter({batch, in_dim}, "x");
    NodeId target = b.parameter({batch, 1}, "target");
    NodeId w1 = b.parameter({in_dim, hidden}, "w1");
    NodeId w2 = b.parameter({hidden, 1}, "w2");
    NodeId h = b.tanh(b.matmul(x, w1));
    NodeId err = b.sub(b.matmul(h, w2), target);
    NodeId loss = b.reduceMean(b.mul(err, err), {0, 1});
    graph.markOutput(loss);
    const std::vector<NodeId> params{w1, w2};
    for (NodeId g : buildGradients(b, loss, params))
        graph.markOutput(g);

    TensorMap feeds = workloads::makeRandomFeeds(graph, 5);
    // target = mean of inputs.
    for (int i = 0; i < batch; ++i) {
        float sum = 0.0f;
        for (int j = 0; j < in_dim; ++j)
            sum += feeds.at(x).at(i * in_dim + j);
        feeds.at(target).set(i, sum / in_dim);
    }

    Session session(graph, std::make_unique<AStitchBackend>());
    float first_loss = 0.0f, last_loss = 0.0f;
    for (int step = 0; step < 40; ++step) {
        const RunReport report = session.run(feeds);
        last_loss = report.outputs[0].at(0);
        if (step == 0)
            first_loss = last_loss;
        for (std::size_t p = 0; p < params.size(); ++p) {
            Tensor &theta = feeds.at(params[p]);
            const Tensor &grad = report.outputs[1 + p];
            for (std::int64_t i = 0; i < theta.numElements(); ++i)
                theta.set(i, theta.at(i) - 0.2f * grad.at(i));
        }
    }
    EXPECT_LT(last_loss, 0.2f * first_loss)
        << "loss did not converge: " << first_loss << " -> "
        << last_loss;
}

} // namespace
} // namespace astitch
