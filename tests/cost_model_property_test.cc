/**
 * @file
 * Property tests of the device model: monotonicity and consistency
 * invariants of the cost model, occupancy analytics over launch grids,
 * and conservation laws the counters must obey across backends.
 */
#include <gtest/gtest.h>

#include "backends/tf/tf_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

KernelWorkDesc
baseDesc()
{
    KernelWorkDesc desc;
    desc.name = "k";
    desc.launch = LaunchDims{2048, 256};
    desc.bytes_read = 8e6;
    desc.bytes_written = 2e6;
    desc.fp_instructions = 2e6;
    return desc;
}

// ---------------------------------------------------------------------
// Cost-model monotonicity.
// ---------------------------------------------------------------------

class TrafficScale : public ::testing::TestWithParam<double>
{
};

TEST_P(TrafficScale, TimeIsMonotoneInTraffic)
{
    const CostModel model(kV100);
    KernelWorkDesc small = baseDesc();
    KernelWorkDesc large = baseDesc();
    large.bytes_read *= GetParam();
    large.bytes_written *= GetParam();
    EXPECT_GE(model.priceKernel(large).time_us,
              model.priceKernel(small).time_us);
}

TEST_P(TrafficScale, TransactionsScaleLinearly)
{
    const CostModel model(kV100);
    KernelWorkDesc small = baseDesc();
    KernelWorkDesc large = baseDesc();
    large.bytes_read *= GetParam();
    const auto a = model.priceKernel(small);
    const auto b = model.priceKernel(large);
    EXPECT_NEAR(static_cast<double>(b.dram_read_transactions),
                GetParam() * a.dram_read_transactions,
                GetParam() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, TrafficScale,
                         ::testing::Values(1.0, 2.0, 4.0, 10.0, 64.0));

TEST(CostModelProperties, InstructionsMonotone)
{
    const CostModel model(kV100);
    double last = 0.0;
    for (double insts : {1e5, 1e6, 1e7, 1e9}) {
        KernelWorkDesc desc = baseDesc();
        desc.fp_instructions = insts;
        const double t = model.priceKernel(desc).time_us;
        EXPECT_GE(t, last);
        last = t;
    }
}

TEST(CostModelProperties, BarrierCostMonotoneInBlocks)
{
    const CostModel model(kV100);
    double last = 0.0;
    for (int blocks = 10; blocks <= 160; blocks += 10) {
        const double t = model.globalBarrierUs(blocks);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(CostModelProperties, CoalescingNeverHelpsBeyondOne)
{
    const CostModel model(kV100);
    KernelWorkDesc perfect = baseDesc();
    for (double c : {0.9, 0.5, 0.25, 0.1}) {
        KernelWorkDesc worse = baseDesc();
        worse.read_coalescing = c;
        EXPECT_GT(model.priceKernel(worse).time_us,
                  0.99 * model.priceKernel(perfect).time_us);
        EXPECT_GT(model.priceKernel(worse).dram_read_transactions,
                  model.priceKernel(perfect).dram_read_transactions);
    }
}

TEST(CostModelProperties, BetterOccupancyNeverSlowsMemoryBoundKernels)
{
    // Same traffic at increasing block sizes (better occupancy/pipe
    // utilization) must not get slower.
    const CostModel model(kV100);
    double last = 1e18;
    for (int block : {32, 64, 128, 256}) {
        KernelWorkDesc desc = baseDesc();
        desc.launch = LaunchDims{2048 * 256 / block, block};
        const double t = model.priceKernel(desc).time_us;
        EXPECT_LE(t, last * 1.0001);
        last = t;
    }
}

TEST(CostModelProperties, A100BeatsV100OnTraffic)
{
    KernelWorkDesc desc = baseDesc();
    const double v100 = CostModel(kV100).priceKernel(desc).time_us;
    const double a100 =
        CostModel(GpuSpec::a100()).priceKernel(desc).time_us;
    EXPECT_LT(a100, v100);
}

TEST(CostModelProperties, MatmulBatchLinearity)
{
    const CostModel model(kV100);
    const double one =
        model.priceMatmul("m", 1, 1024, 1024, 1024, 4).time_us;
    const double eight =
        model.priceMatmul("m", 8, 1024, 1024, 1024, 4).time_us;
    EXPECT_NEAR(eight, 8.0 * one, 0.05 * eight);
}

TEST(CostModelProperties, Fp16HalvesMatmulMemoryBoundTime)
{
    // A skinny GEMM is bandwidth-bound: halving dtype width helps.
    const CostModel model(kV100);
    const double fp32 =
        model.priceMatmul("m", 1, 8192, 8, 8192, 4).time_us;
    const double fp16 =
        model.priceMatmul("m", 1, 8192, 8, 8192, 2).time_us;
    EXPECT_LT(fp16, 0.75 * fp32);
}

// ---------------------------------------------------------------------
// Occupancy analytics across grid sizes.
// ---------------------------------------------------------------------

class GridSweep : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(GridSweep, AnalyticsStayInUnitRange)
{
    const std::int64_t grid = GetParam();
    for (int block : {64, 256, 1024}) {
        const Occupancy occ = computeOccupancy(kV100, block, 32, 0);
        const LaunchDims launch{grid, block};
        const double a = achievedOccupancy(kV100, launch, occ);
        const double e = smEfficiency(kV100, launch, occ);
        EXPECT_GT(a, 0.0);
        EXPECT_LE(a, 1.0);
        EXPECT_GT(e, 0.0);
        EXPECT_LE(e, 1.0);
        // Achieved occupancy never exceeds theoretical.
        EXPECT_LE(a, occ.theoretical + 1e-12);
    }
}

TEST_P(GridSweep, EfficiencyIsOneOnExactWaves)
{
    const Occupancy occ = computeOccupancy(kV100, 256, 32, 0);
    const std::int64_t bpw = occ.blocksPerWave(kV100);
    const LaunchDims launch{GetParam() * bpw, 256};
    EXPECT_DOUBLE_EQ(smEfficiency(kV100, launch, occ), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grids, GridSweep,
                         ::testing::Values(1, 2, 7, 80, 159, 160, 161,
                                           1000, 750000));

// ---------------------------------------------------------------------
// Counter conservation laws across backends.
// ---------------------------------------------------------------------

TEST(CounterLaws, EndToEndEqualsBreakdownTotal)
{
    for (const auto &spec : workloads::inferenceWorkloads()) {
        const Graph g = spec.build();
        for (int which = 0; which < 2; ++which) {
            std::unique_ptr<Backend> backend;
            if (which == 0)
                backend = std::make_unique<XlaBackend>();
            else
                backend = std::make_unique<AStitchBackend>();
            Session session(g, std::move(backend));
            const RunReport r = session.profile();
            EXPECT_NEAR(r.end_to_end_us, r.breakdown.totalUs(),
                        1e-6 * r.end_to_end_us)
                << spec.name;
        }
    }
}

TEST(CounterLaws, ComputeTimeIsBackendInvariant)
{
    // Library kernels are identical across backends; only their
    // dispatch overhead may differ.
    const Graph g = workloads::inferenceWorkloads()[2].build(); // BERT
    Session xla(g, std::make_unique<XlaBackend>());
    Session as(g, std::make_unique<AStitchBackend>());
    EXPECT_NEAR(xla.profile().breakdown.compute_us,
                as.profile().breakdown.compute_us, 1e-6);
}

TEST(CounterLaws, OutputWritesAreABaselineFloor)
{
    // Every backend must at least write the cluster outputs; TF (which
    // writes every intermediate) bounds everyone from above on writes.
    Graph g = testing::buildSoftmax(1024, 512);
    Session tf(g, std::make_unique<TfBackend>());
    Session xla(g, std::make_unique<XlaBackend>());
    Session as(g, std::make_unique<AStitchBackend>());
    const auto tf_w = tf.profile().counters.dramWriteTransactions();
    const auto xla_w = xla.profile().counters.dramWriteTransactions();
    const auto as_w = as.profile().counters.dramWriteTransactions();
    // Output tensor: 1024x512 floats = 64K transactions.
    const std::int64_t floor = 1024 * 512 * 4 / 32;
    EXPECT_GE(as_w, floor);
    EXPECT_LE(as_w, xla_w);
    EXPECT_LE(xla_w, tf_w);
}

TEST(CounterLaws, DeterministicAcrossRuns)
{
    const Graph g = workloads::inferenceWorkloads()[4].build(); // DIEN
    Session session(g, std::make_unique<AStitchBackend>());
    const RunReport a = session.profile();
    const RunReport b = session.profile();
    EXPECT_DOUBLE_EQ(a.end_to_end_us, b.end_to_end_us);
    EXPECT_EQ(a.counters.dramReadTransactions(),
              b.counters.dramReadTransactions());
    EXPECT_DOUBLE_EQ(a.counters.instFp32(), b.counters.instFp32());
}

TEST(CounterLaws, KernelRecordsCarryLaunchGeometry)
{
    Graph g = testing::buildSoftmax(512, 256);
    Session session(g, std::make_unique<AStitchBackend>());
    for (const auto &k : session.profile().counters.kernels) {
        if (k.category == KernelCategory::Memcpy)
            continue;
        EXPECT_GE(k.launch.grid, 1);
        EXPECT_GE(k.launch.block, 1);
        EXPECT_GT(k.time_us, 0.0);
        EXPECT_GE(k.launch_overhead_us, 0.0);
    }
}

} // namespace
} // namespace astitch
