/**
 * @file
 * Seeded-defect tests of the stitch sanitizer: take valid compiled
 * clusters from the seed workloads, corrupt them one hazard class at a
 * time, and assert the sanitizer reports exactly the expected
 * diagnostic code — plus the inverse: unmutated seed workloads are
 * finding-free on every shipped device.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "analysis/sanitizer.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "sim/occupancy.h"
#include "workloads/common.h"

namespace astitch {
namespace {

/** One seed workload compiled once with the AStitch backend on V100. */
struct CompiledWorkload
{
    std::string name;
    Graph graph;
    std::vector<Cluster> clusters;
    std::vector<CompiledCluster> compiled;
};

const GpuSpec kV100 = GpuSpec::v100();

const std::deque<CompiledWorkload> &
compiledWorkloads()
{
    static const std::deque<CompiledWorkload> *cache = [] {
        auto *all = new std::deque<CompiledWorkload>;
        for (const auto &spec : workloads::inferenceWorkloads()) {
            all->push_back(CompiledWorkload{spec.name, spec.build(), {}, {}});
            CompiledWorkload &wl = all->back();
            Session session(wl.graph,
                            std::make_unique<AStitchBackend>(),
                            SessionOptions{});
            session.compile();
            wl.clusters = session.clusters();
            wl.compiled = session.compiled();
        }
        return all;
    }();
    return *cache;
}

/** Schedule positions and last-reader lookup for one kernel plan. */
struct PlanIndex
{
    const Graph &graph;
    const KernelPlan &plan;
    std::unordered_map<NodeId, int> pos;

    PlanIndex(const Graph &g, const KernelPlan &p) : graph(g), plan(p)
    {
        for (std::size_t i = 0; i < plan.ops.size(); ++i)
            pos.emplace(plan.ops[i].node, static_cast<int>(i));
    }

    int lastReader(int i) const
    {
        int last = i;
        for (NodeId u : graph.users(plan.ops[i].node)) {
            const auto it = pos.find(u);
            if (it != pos.end())
                last = std::max(last, it->second);
        }
        return last;
    }

    /** Earliest consumer position after @p i, or -1. */
    int firstReader(int i) const
    {
        int first = -1;
        for (NodeId u : graph.users(plan.ops[i].node)) {
            const auto it = pos.find(u);
            if (it != pos.end() && it->second > i &&
                (first < 0 || it->second < first))
                first = it->second;
        }
        return first;
    }

    bool livesOverlap(const SharedSlot &a, const SharedSlot &b) const
    {
        const int def_a = pos.at(a.node), def_b = pos.at(b.node);
        return def_a <= lastReader(def_b) && def_b <= lastReader(def_a);
    }
};

std::vector<std::string>
sanitize(const Graph &graph, const KernelPlan &plan,
         DiagnosticEngine &engine, const GpuSpec &spec = kV100)
{
    CompiledCluster one;
    one.kernels.push_back(plan);
    sanitizeCompiledCluster(graph, one, spec, engine);
    std::vector<std::string> codes;
    for (const Diagnostic &d : engine.diagnostics())
        codes.push_back(d.code);
    return codes;
}

/** Run @p mutate on every seed kernel until it reports it applied. */
template <typename Fn>
void
forFirstMatchingKernel(Fn &&mutate)
{
    for (const CompiledWorkload &wl : compiledWorkloads()) {
        for (const CompiledCluster &compiled : wl.compiled) {
            for (const KernelPlan &plan : compiled.kernels) {
                if (mutate(wl.graph, plan))
                    return;
            }
        }
    }
    FAIL() << "no seed kernel matched the mutation's precondition";
}

// ---------------------------------------------------------------------
// Baseline: unmutated seed plans are finding-free on every device.
// ---------------------------------------------------------------------

TEST(PlanMutation, SeedWorkloadsAreFindingFreeOnEveryDevice)
{
    for (const GpuSpec &spec :
         {GpuSpec::v100(), GpuSpec::t4(), GpuSpec::a100()}) {
        for (const auto &wlspec : workloads::inferenceWorkloads()) {
            const Graph graph = wlspec.build();
            SessionOptions options;
            options.spec = spec;
            Session session(graph, std::make_unique<AStitchBackend>(),
                            options);
            session.compile();
            EXPECT_TRUE(session.diagnostics().empty())
                << wlspec.name << " on " << spec.name << ":\n"
                << session.diagnostics().renderText();
        }
    }
}

// ---------------------------------------------------------------------
// Mutation 1: drop the barrier covering a shared-memory stitch edge.
// ---------------------------------------------------------------------

TEST(PlanMutation, DroppedRegionalBarrierIsAS101)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        const PlanIndex index(graph, seed);
        for (std::size_t i = 0; i < seed.ops.size(); ++i) {
            if (seed.ops[i].out_space != BufferSpace::Shared)
                continue;
            const int consumer = index.firstReader(static_cast<int>(i));
            if (consumer < 0)
                continue;
            // Remove every barrier inside the producer->consumer window;
            // write-after-read windows start at the consumer or later,
            // so only edge coverage is lost.
            KernelPlan mutated = seed;
            const auto removed = std::remove_if(
                mutated.barriers.begin(), mutated.barriers.end(),
                [&](const BarrierPoint &b) {
                    return b.after_op >= static_cast<int>(i) &&
                           b.after_op < consumer;
                });
            if (removed == mutated.barriers.end())
                continue; // window was empty to begin with
            mutated.barriers.erase(removed, mutated.barriers.end());

            DiagnosticEngine engine;
            const auto codes = sanitize(graph, mutated, engine);
            EXPECT_FALSE(codes.empty());
            for (const std::string &code : codes)
                EXPECT_EQ(code, "AS101") << engine.renderText();
            return true;
        }
        return false;
    });
}

// ---------------------------------------------------------------------
// Mutation 2: alias two concurrently-live shared-arena slots.
// ---------------------------------------------------------------------

TEST(PlanMutation, AliasedLiveSlotsAreAS401)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        const PlanIndex index(graph, seed);
        const auto &slots = seed.shared_slots;
        for (std::size_t a = 0; a < slots.size(); ++a) {
            for (std::size_t b = a + 1; b < slots.size(); ++b) {
                if (!index.livesOverlap(slots[a], slots[b]))
                    continue;
                if (slots[a].offset_bytes + slots[b].size_bytes >
                    seed.smem_per_block)
                    continue; // would trip AS402 instead
                // Moving slot b must not land it on a disjoint-lifetime
                // third slot (that would be an AS102 hazard, a different
                // mutation class).
                bool clean_landing = true;
                for (std::size_t c = 0; c < slots.size(); ++c) {
                    if (c == a || c == b)
                        continue;
                    const bool overlaps =
                        slots[a].offset_bytes <
                            slots[c].offset_bytes + slots[c].size_bytes &&
                        slots[c].offset_bytes <
                            slots[a].offset_bytes + slots[b].size_bytes;
                    if (overlaps &&
                        !index.livesOverlap(slots[b], slots[c]))
                        clean_landing = false;
                }
                if (!clean_landing)
                    continue;

                KernelPlan mutated = seed;
                mutated.shared_slots[b].offset_bytes =
                    slots[a].offset_bytes;
                DiagnosticEngine engine;
                const auto codes = sanitize(graph, mutated, engine);
                EXPECT_FALSE(codes.empty());
                for (const std::string &code : codes)
                    EXPECT_EQ(code, "AS401") << engine.renderText();
                return true;
            }
        }
        return false;
    });
}

// ---------------------------------------------------------------------
// Mutation 3: inflate a global-barrier kernel's grid past co-residency.
// ---------------------------------------------------------------------

TEST(PlanMutation, InflatedGridDeadlocksAsAS201)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        if (seed.num_global_barriers == 0)
            return false;
        const std::int64_t capacity = coResidentBlockCapacity(
            kV100, seed.launch.block, seed.regs_per_thread,
            seed.smem_per_block);
        EXPECT_GT(capacity, 0);
        EXPECT_LE(seed.launch.grid, capacity); // sanity of the seed

        KernelPlan mutated = seed;
        mutated.launch.grid = capacity + 1;
        DiagnosticEngine engine;
        const auto codes = sanitize(graph, mutated, engine);
        EXPECT_FALSE(codes.empty());
        for (const std::string &code : codes)
            EXPECT_EQ(code, "AS201") << engine.renderText();
        return true;
    });
}

// ---------------------------------------------------------------------
// Mutation 4: flip a Shared edge's consumer to a foreign partitioning.
// ---------------------------------------------------------------------

TEST(PlanMutation, CrossBlockConsumerIsAS301)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        const PlanIndex index(graph, seed);
        for (std::size_t i = 0; i < seed.ops.size(); ++i) {
            if (seed.ops[i].out_space != BufferSpace::Shared ||
                !seed.ops[i].partition.known())
                continue;
            const int consumer = index.firstReader(static_cast<int>(i));
            if (consumer < 0 || !seed.ops[consumer].partition.known())
                continue;

            KernelPlan mutated = seed;
            // Double the consumer's grid but keep tasks_per_block, so
            // only the block-locality contract (AS301) is violated — no
            // trip-count divergence (AS501).
            mutated.ops[consumer].partition.launch.grid *= 2;
            DiagnosticEngine engine;
            const auto codes = sanitize(graph, mutated, engine);
            EXPECT_FALSE(codes.empty());
            for (const std::string &code : codes)
                EXPECT_EQ(code, "AS301") << engine.renderText();
            return true;
        }
        return false;
    });
}

// ---------------------------------------------------------------------
// Mutation 5: corrupt a barrier's packed-task-loop trip count.
// ---------------------------------------------------------------------

TEST(PlanMutation, DivergentBarrierTripCountIsAS501)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t b = 0; b < seed.barriers.size(); ++b) {
            const BarrierPoint &barrier = seed.barriers[b];
            if (barrier.after_op < 0 ||
                barrier.after_op >= static_cast<int>(seed.ops.size()) ||
                !seed.ops[barrier.after_op].partition.known())
                continue;

            KernelPlan mutated = seed;
            mutated.barriers[b].trip_count += 3;
            DiagnosticEngine engine;
            const auto codes = sanitize(graph, mutated, engine);
            EXPECT_FALSE(codes.empty());
            for (const std::string &code : codes)
                EXPECT_EQ(code, "AS501") << engine.renderText();
            EXPECT_FALSE(engine.hasErrors()); // divergence is a lint
            return true;
        }
        return false;
    });
}

} // namespace
} // namespace astitch
