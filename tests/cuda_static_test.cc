/**
 * @file
 * Tests of the emitted-CUDA static analyzer (AS9xx).
 *
 * Four layers:
 *  - Lexer/survey units: comment stripping, punct longest-match, and
 *    the structural survey the CLI's `analyze --emitted` listing uses.
 *  - Seeded emitter mutations: compile a real workload, corrupt the
 *    emitted text the way a specific emitter bug would, and assert the
 *    analyzer catches it with exactly one distinct AS9xx code — the
 *    detection bar of DESIGN.md §15.
 *  - Synthetic sources: hand-written kernels driven through
 *    analyzeEmittedCudaSource with one check group enabled at a time,
 *    pinning each code to its own trigger.
 *  - Integration: a zero-findings sweep with the analyzer default-on
 *    across devices, and the artifact-cache warm-load gate rejecting a
 *    tampered stored kernel source (AS624).
 */
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cuda_lexer.h"
#include "analysis/cuda_static.h"
#include "core/astitch_backend.h"
#include "core/cuda_emitter.h"
#include "runtime/artifact_cache.h"
#include "runtime/plan_serde.h"
#include "runtime/session.h"
#include "support/atomic_file.h"
#include "support/strings.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

Cluster
soleCluster(const Graph &g)
{
    auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 1u);
    return clusters[0];
}

/** Distinct AS9xx codes in @p engine. */
std::set<std::string>
as9Codes(const DiagnosticEngine &engine)
{
    std::set<std::string> codes;
    for (const Diagnostic &d : engine.diagnostics()) {
        if (d.code.rfind("AS9", 0) == 0)
            codes.insert(d.code);
    }
    return codes;
}

// ---------------------------------------------------------------------
// Lexer units.
// ---------------------------------------------------------------------

TEST(CudaStaticLexer, StripsCommentsAndPreprocessor)
{
    const auto tokens = lexCudaSource("#include <cuda_runtime.h>\n"
                                      "int a = 1; // trailing note\n"
                                      "/* block\n comment */ b += 2;\n");
    std::vector<std::string> texts;
    for (const CudaToken &t : tokens) {
        if (t.kind != CudaTokenKind::End)
            texts.push_back(t.text);
    }
    const std::vector<std::string> expected = {"int", "a", "=", "1", ";",
                                               "b", "+=", "2", ";"};
    EXPECT_EQ(texts, expected);
}

TEST(CudaStaticLexer, PunctuationLexesLongestMatch)
{
    const auto tokens = lexCudaSource("a += b->c <<< d");
    std::vector<std::string> puncts;
    for (const CudaToken &t : tokens) {
        if (t.kind == CudaTokenKind::Punct)
            puncts.push_back(t.text);
    }
    // "+=" and "->" must not split into single characters.
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "+="),
              puncts.end());
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"),
              puncts.end());
    EXPECT_EQ(std::find(puncts.begin(), puncts.end(), "+"),
              puncts.end());
}

TEST(CudaStaticLexer, TracksLinesAndIntegerValues)
{
    const auto tokens = lexCudaSource("x\n  1024\n");
    ASSERT_GE(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_TRUE(tokens[1].is_integer);
    EXPECT_EQ(tokens[1].value, 1024);
}

// ---------------------------------------------------------------------
// Structural survey.
// ---------------------------------------------------------------------

TEST(CudaStaticSurvey, ReportsKernelStructure)
{
    const EmittedSourceSurvey survey = surveyEmittedCuda(
        "extern \"C\" __global__ void\n"
        "__launch_bounds__(128, 2)\n"
        "k(float *a)\n"
        "{\n"
        "    __shared__ float smem[64];\n"
        "    for (long task = blockIdx.x; task < 8; task += gridDim.x) {\n"
        "        smem[threadIdx.x % 64] = 0.0f;\n"
        "        __syncthreads();\n"
        "        a[task] = smem[0];\n"
        "    }\n"
        "}\n");
    EXPECT_TRUE(survey.parsed);
    EXPECT_EQ(survey.functions, 1);
    EXPECT_EQ(survey.sync_statements, 1);
    EXPECT_EQ(survey.grid_barrier_calls, 0);
    EXPECT_EQ(survey.task_loops, 1);
    EXPECT_EQ(survey.arena_words, 64);
    EXPECT_EQ(survey.launch_bounds_block, 128);
}

TEST(CudaStaticSurvey, UnparsableTextSurveysAsUnparsed)
{
    const EmittedSourceSurvey survey =
        surveyEmittedCuda("this is not CUDA source at all }{");
    EXPECT_FALSE(survey.parsed);
}

// ---------------------------------------------------------------------
// Seeded emitter mutations. Each corruption of a real workload's
// emitted text must be caught by exactly one distinct AS9xx code.
// ---------------------------------------------------------------------

/**
 * Compile @p g, check every emitted kernel is clean as rendered, apply
 * @p mutate to each kernel source it matches, and return the distinct
 * AS9xx codes the analyzer reports for the mutated text.
 */
std::set<std::string>
mutationFindings(Graph g, const std::function<bool(std::string *)> &mutate)
{
    const Cluster cluster = soleCluster(g);
    StitchDiagnostics diag;
    const CompiledCluster compiled =
        compileStitchOp(g, cluster, kV100, AStitchOptions{}, &diag);
    std::set<std::string> codes;
    bool mutated_any = false;
    for (const KernelPlan &plan : compiled.kernels) {
        DiagnosticEngine clean;
        EXPECT_TRUE(analyzeEmittedCuda(g, plan, kV100, clean))
            << clean.renderText();
        EXPECT_TRUE(as9Codes(clean).empty()) << clean.renderText();

        std::string source = plan.cuda_source;
        if (!mutate(&source))
            continue;
        mutated_any = true;
        DiagnosticEngine engine;
        analyzeEmittedCudaSource(g, source, plan, kV100, engine);
        const std::set<std::string> found = as9Codes(engine);
        codes.insert(found.begin(), found.end());
    }
    EXPECT_TRUE(mutated_any) << "mutation matched no kernel source";
    return codes;
}

bool
eraseFirst(std::string *source, const std::string &needle)
{
    const std::size_t pos = source->find(needle);
    if (pos == std::string::npos)
        return false;
    source->erase(pos, needle.size());
    return true;
}

bool
replaceAll(std::string *source, const std::string &from,
           const std::string &to)
{
    bool any = false;
    std::size_t pos = 0;
    while ((pos = source->find(from, pos)) != std::string::npos) {
        source->replace(pos, from.size(), to);
        pos += to.size();
        any = true;
    }
    return any;
}

/** Find the first integer after @p anchor and add @p delta to it. */
bool
bumpIntegerAfter(std::string *source, const std::string &anchor,
                 std::int64_t delta)
{
    const std::size_t pos = source->find(anchor);
    if (pos == std::string::npos)
        return false;
    std::size_t start = pos + anchor.size();
    std::size_t end = start;
    while (end < source->size() &&
           std::isdigit(static_cast<unsigned char>((*source)[end]))) {
        ++end;
    }
    if (end == start)
        return false;
    const std::int64_t value =
        std::stoll(source->substr(start, end - start));
    source->replace(start, end - start, std::to_string(value + delta));
    return true;
}

TEST(CudaStaticMutation, DroppedBlockBarrierFiresAS911)
{
    // Drop the arena-reuse separator (not a boundary sync covering a
    // regional store, so AS922 stays silent): the text then implements
    // one fewer block barrier than the plan schedules.
    const auto codes = mutationFindings(
        testing::buildSoftmax(4096, 256), [](std::string *source) {
            return eraseFirst(source,
                              "__syncthreads(); // arena reuse "
                              "separator");
        });
    EXPECT_EQ(codes, std::set<std::string>{"AS911"});
}

TEST(CudaStaticMutation, ShrunkSharedArenaFiresAS912)
{
    // Declare one word less than the planner sized: regional slots can
    // overflow the arena.
    const auto codes = mutationFindings(
        std::move(testing::buildFig5(2, 128).graph),
        [](std::string *source) {
            return bumpIntegerAfter(source, "__shared__ float smem[",
                                    -1);
        });
    EXPECT_EQ(codes, std::set<std::string>{"AS912"});
}

TEST(CudaStaticMutation, StrippedVolatileFiresAS921)
{
    // The <64,30000> softmax stitches on the global scheme; stripping
    // volatile from the grid-barrier flags lets the spin loop hoist.
    const auto codes = mutationFindings(
        testing::buildSoftmax(64, 30000), [](std::string *source) {
            return replaceAll(source, "volatile int *", "int *");
        });
    EXPECT_EQ(codes, std::set<std::string>{"AS921"});
}

TEST(CudaStaticMutation, OffByOneTaskLoopBoundFiresAS923)
{
    const auto codes = mutationFindings(
        std::move(testing::buildFig5(2, 128).graph),
        [](std::string *source) {
            return bumpIntegerAfter(
                source, "for (long task = blockIdx.x; task < ", 1);
        });
    EXPECT_EQ(codes, std::set<std::string>{"AS923"});
}

TEST(CudaStaticMutation, WrongLaunchBoundsFiresAS913)
{
    const auto codes = mutationFindings(
        std::move(testing::buildFig5(2, 128).graph),
        [](std::string *source) {
            return bumpIntegerAfter(source, "__launch_bounds__(", -1);
        });
    EXPECT_EQ(codes, std::set<std::string>{"AS913"});
}

// ---------------------------------------------------------------------
// Synthetic sources, one check group at a time.
// ---------------------------------------------------------------------

CudaStaticOptions
only(bool divergence, bool crosscheck, bool lint)
{
    CudaStaticOptions options;
    options.divergence = divergence;
    options.crosscheck = crosscheck;
    options.lint = lint;
    return options;
}

TEST(CudaStaticSynthetic, UnparsableSourceFiresAS900)
{
    Graph g;
    KernelPlan plan;
    plan.name = "broken";
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeEmittedCudaSource(
        g, "no kernel here, just text }{", plan, kV100, engine));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS900"});
}

TEST(CudaStaticSynthetic, BarrierUnderThreadDivergenceFiresAS901)
{
    Graph g;
    KernelPlan plan;
    plan.name = "divergent";
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeEmittedCudaSource(
        g,
        "extern \"C\" __global__ void k(float *a)\n"
        "{\n"
        "    if (threadIdx.x < 5) {\n"
        "        __syncthreads();\n"
        "    }\n"
        "}\n",
        plan, kV100, engine, only(true, false, false)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS901"});
}

TEST(CudaStaticSynthetic, GridBarrierUnderBlockDivergenceFiresAS901)
{
    Graph g;
    KernelPlan plan;
    plan.name = "divergent_grid";
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeEmittedCudaSource(
        g,
        "__device__ void grid_barrier(volatile int *a,"
        " volatile int *d) { __syncthreads(); }\n"
        "extern \"C\" __global__ void k(int *barrier_state)\n"
        "{\n"
        "    if (blockIdx.x < 3) {\n"
        "        grid_barrier(barrier_state + 0, barrier_state + 1);\n"
        "    }\n"
        "}\n",
        plan, kV100, engine, only(true, false, false)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS901"});
}

TEST(CudaStaticSynthetic, BarrierInDeadCodeFiresAS902)
{
    Graph g;
    KernelPlan plan;
    plan.name = "dead";
    DiagnosticEngine engine;
    // AS902 is Warning severity: the analysis still passes.
    EXPECT_TRUE(analyzeEmittedCudaSource(
        g,
        "extern \"C\" __global__ void k(float *a)\n"
        "{\n"
        "    if (0) {\n"
        "        __syncthreads();\n"
        "    }\n"
        "}\n",
        plan, kV100, engine, only(true, false, false)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS902"});
}

TEST(CudaStaticSynthetic, UndeclaredBufferAccessFiresAS914)
{
    Graph g;
    KernelPlan plan;
    plan.name = "ghost";
    // A non-empty summary arms the access cross-check; the declared
    // buffer is not nameable from an empty plan, so only the text's
    // unknown buffers can be flagged.
    OpAccess access;
    access.buffer = "input:%0";
    access.kind = AccessKind::Read;
    plan.accesses.push_back(access);
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeEmittedCudaSource(
        g,
        "extern \"C\" __global__ void\n"
        "__launch_bounds__(256)\n"
        "k(float *out)\n"
        "{\n"
        "    const long elem = threadIdx.x;\n"
        "    out[elem] = v_ghost[elem];\n"
        "}\n",
        plan, kV100, engine, only(false, true, false)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS914"});
}

TEST(CudaStaticSynthetic, NonVolatileBarrierFlagsFireAS921)
{
    Graph g;
    KernelPlan plan;
    plan.name = "hoistable";
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeEmittedCudaSource(
        g,
        "__device__ void grid_barrier(int *arrive, int *depart)\n"
        "{\n"
        "    __syncthreads();\n"
        "}\n"
        "extern \"C\" __global__ void k(int *barrier_state)\n"
        "{\n"
        "    grid_barrier(barrier_state + 0, barrier_state + 1);\n"
        "}\n",
        plan, kV100, engine, only(false, false, true)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS921"});
}

TEST(CudaStaticSynthetic, UnbarrieredSmemWriteFiresAS922)
{
    Graph g;
    KernelPlan plan;
    plan.name = "racy";
    DiagnosticEngine engine;
    // AS922 is Warning severity: the analysis still passes.
    EXPECT_TRUE(analyzeEmittedCudaSource(
        g,
        "extern \"C\" __global__ void k(float *out)\n"
        "{\n"
        "    __shared__ float smem[32];\n"
        "    smem[threadIdx.x % 32] = 1.0f;\n"
        "    out[threadIdx.x] = smem[0];\n"
        "}\n",
        plan, kV100, engine, only(false, false, true)));
    EXPECT_EQ(as9Codes(engine), std::set<std::string>{"AS922"});
}

// ---------------------------------------------------------------------
// Integration: default-on sweep and the artifact warm-load gate.
// ---------------------------------------------------------------------

TEST(CudaStaticSweep, DefaultOnSessionsReportNoAS9xxAcrossDevices)
{
    const auto build = [](int which) -> Graph {
        switch (which) {
          case 0:
            return std::move(testing::buildFig7().graph);
          case 1:
            return std::move(testing::buildFig5(2, 128).graph);
          case 2:
            return testing::buildSoftmax(64, 512);
          default:
            return testing::buildSoftmax(64, 30000);
        }
    };
    for (const GpuSpec &spec :
         {GpuSpec::v100(), GpuSpec::t4(), GpuSpec::a100()}) {
        for (int which = 0; which < 4; ++which) {
            const Graph graph = build(which);
            SessionOptions options;
            options.spec = spec;
            Session session(graph, std::make_unique<AStitchBackend>(),
                            options);
            session.compile();
            EXPECT_TRUE(as9Codes(session.diagnostics()).empty())
                << "workload " << which << " on " << spec.name << ": "
                << session.diagnostics().renderText();
        }
    }
}

int
codeCount(const DiagnosticEngine &engine, const std::string &code)
{
    int n = 0;
    for (const Diagnostic &d : engine.diagnostics())
        n += d.code == code;
    return n;
}

TEST(CudaStaticArtifact, TamperedStoredKernelSourceIsRejected)
{
    const std::string dir =
        ::testing::TempDir() + "astitch_artifact_cuda_static";
    ArtifactCache(dir).clear();
    SessionOptions options;
    options.artifact_cache_dir = dir;
    const Graph graph = testing::buildFig7().graph;
    const TensorMap feeds = workloads::makeRandomFeeds(graph, 7);

    const auto run = [&](bool *from_artifact, DiagnosticEngine *diags) {
        Session session(graph, std::make_unique<AStitchBackend>(),
                        options);
        session.compile();
        if (from_artifact)
            *from_artifact = session.passTimings().fromArtifact();
        if (diags) {
            diags->clear();
            diags->merge(session.diagnostics());
        }
        return session.run(feeds).outputs;
    };

    const auto reference = run(nullptr, nullptr);

    // Warm load of the untampered artifact passes the emitted gate.
    bool from_artifact = false;
    auto warm = run(&from_artifact, nullptr);
    EXPECT_TRUE(from_artifact);

    // Tamper the stored kernel text only: drop one block barrier from
    // the persisted cuda_source, leaving every other plan field (and
    // the envelope checksum, which we recompute) intact.
    std::string compile_key;
    for (const ArtifactFileInfo &info : ArtifactCache(dir).scan()) {
        if (info.quarantined)
            continue;
        const std::size_t cut = info.key.rfind("|serde-pass-v");
        compile_key = cut == std::string::npos ? info.key
                                               : info.key.substr(0, cut);
    }
    ASSERT_FALSE(compile_key.empty());
    const std::string path = ArtifactCache(dir).filePathFor(compile_key);
    std::string good;
    ASSERT_EQ(readFileBytes(path, &good), FileReadStatus::Ok);
    std::string key, payload;
    ASSERT_EQ(inspectArtifact(good, &key, &payload), ArtifactStatus::Ok);
    JitCacheEntry entry;
    std::string error;
    ASSERT_TRUE(deserializePlanPayload(payload, &entry, &error)) << error;

    bool tampered = false;
    for (CompiledCluster &compiled : entry.compiled) {
        for (KernelPlan &plan : compiled.kernels) {
            const std::size_t pos =
                plan.cuda_source.find("__syncthreads();");
            if (pos == std::string::npos)
                continue;
            plan.cuda_source.erase(pos, 16);
            tampered = true;
        }
    }
    ASSERT_TRUE(tampered) << "no stored kernel source to tamper";
    {
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(file.good());
        const std::string bytes =
            wrapArtifact(key, serializePlanPayload(entry));
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
    }

    // The warm-load gate re-runs the AS9xx pass over the stored text,
    // rejects the artifact (AS624) and recompiles cleanly.
    DiagnosticEngine diags;
    const auto outputs = run(&from_artifact, &diags);
    EXPECT_FALSE(from_artifact);
    EXPECT_GE(codeCount(diags, "AS624"), 1) << diags.renderText();
    ASSERT_EQ(outputs.size(), reference.size());
    for (std::size_t i = 0; i < outputs.size(); ++i)
        EXPECT_TRUE(outputs[i].allClose(reference[i], 1e-6, 1e-7));
}

} // namespace
} // namespace astitch
