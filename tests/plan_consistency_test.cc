/**
 * @file
 * Tests of the AS0xx structural plan-consistency checks through the
 * unified analyzer: each defect category must be caught, every real
 * backend must validate cleanly.
 */
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "backends/tf/cuda_graph_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "test_graphs.h"
#include "workloads/common.h"
#include "workloads/random_graph.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

/** The AS0xx findings for one compiled cluster. */
std::vector<Diagnostic>
consistencyFindings(const Graph &graph, const Cluster &cluster,
                    const CompiledCluster &compiled, const GpuSpec &spec)
{
    DiagnosticEngine engine;
    analyzeCompiledCluster(graph, cluster, compiled, spec, engine,
                           AnalysisOptions::consistencyOnly());
    return engine.diagnostics();
}

/** A trivially valid 1-op cluster + plan to mutate. */
struct Fixture
{
    Graph graph;
    Cluster cluster;
    CompiledCluster compiled;
    NodeId x, y;

    Fixture()
    {
        GraphBuilder b(graph);
        x = b.parameter({64});
        y = b.tanh(x);
        graph.markOutput(y);
        cluster = findMemoryIntensiveClusters(graph)[0];

        KernelPlan plan;
        plan.name = "k";
        plan.launch = LaunchDims{1, 64};
        plan.inputs.push_back(KernelInput{x, 1.0});
        plan.ops.push_back(ScheduledOp{y, 1.0, BufferSpace::Output, {}});
        plan.outputs.push_back(y);
        compiled.kernels.push_back(std::move(plan));
    }
};

TEST(PlanConsistency, AcceptsAValidPlan)
{
    Fixture f;
    EXPECT_TRUE(
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100)
            .empty());
    DiagnosticEngine engine;
    EXPECT_TRUE(analyzeCompiledCluster(
        f.graph, f.cluster, f.compiled, kV100, engine,
        AnalysisOptions::consistencyOnly()));
}

TEST(PlanConsistency, CatchesOversizedBlock)
{
    Fixture f;
    f.compiled.kernels[0].launch.block = 2048;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    ASSERT_FALSE(defects.empty());
    EXPECT_NE(defects[0].message.find("block size"), std::string::npos);
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeCompiledCluster(
        f.graph, f.cluster, f.compiled, kV100, engine,
        AnalysisOptions::consistencyOnly()));
}

TEST(PlanConsistency, CatchesRegisterAndSmemViolations)
{
    Fixture f;
    f.compiled.kernels[0].regs_per_thread = 300;
    f.compiled.kernels[0].smem_per_block = 100 * 1024;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    EXPECT_EQ(defects.size(), 2u);
}

TEST(PlanConsistency, CatchesBarrierBeyondWave)
{
    Fixture f;
    f.compiled.kernels[0].launch = LaunchDims{161, 1024};
    f.compiled.kernels[0].num_global_barriers = 1;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    ASSERT_FALSE(defects.empty());
    EXPECT_NE(defects[0].message.find("wave capacity"),
              std::string::npos);
}

TEST(PlanConsistency, CatchesMissingInputMaterialization)
{
    Fixture f;
    // Pretend the kernel reads an intermediate never written.
    f.compiled.kernels[0].inputs[0].node = f.y;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    EXPECT_FALSE(defects.empty());
}

TEST(PlanConsistency, CatchesUseBeforeDef)
{
    Fixture f;
    f.compiled.kernels[0].inputs.clear(); // y reads x with no input
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    bool found = false;
    for (const auto &d : defects)
        found |= d.message.find("before it is available") !=
                 std::string::npos;
    EXPECT_TRUE(found);
}

TEST(PlanConsistency, CatchesUnscheduledClusterNode)
{
    Fixture f;
    f.compiled.kernels[0].ops.clear();
    f.compiled.kernels[0].outputs.clear();
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    bool coverage = false, output = false;
    for (const auto &d : defects) {
        coverage |=
            d.message.find("not scheduled") != std::string::npos;
        output |=
            d.message.find("never materialized") != std::string::npos;
    }
    EXPECT_TRUE(coverage);
    EXPECT_TRUE(output);
}

TEST(PlanConsistency, CatchesSubUnitFactors)
{
    Fixture f;
    f.compiled.kernels[0].ops[0].recompute_factor = 0.5;
    f.compiled.kernels[0].inputs[0].load_factor = 0.0;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    EXPECT_EQ(defects.size(), 2u);
}

TEST(PlanConsistency, FindingsCarryStableCodes)
{
    Fixture f;
    f.compiled.kernels[0].launch.block = 2048;
    const auto defects =
        consistencyFindings(f.graph, f.cluster, f.compiled, kV100);
    ASSERT_FALSE(defects.empty());
    for (const auto &d : defects) {
        EXPECT_EQ(familyOf(d.code), "AS0");
        EXPECT_NE(findDiagnosticCode(d.code), nullptr);
    }
}

TEST(PlanConsistency, EveryBackendValidatesOnEveryWorkload)
{
    std::vector<std::function<std::unique_ptr<Backend>()>> backends = {
        [] { return std::make_unique<TfBackend>(); },
        [] { return std::make_unique<CudaGraphBackend>(); },
        [] { return std::make_unique<XlaBackend>(); },
        [] { return std::make_unique<TvmBackend>(); },
        [] { return std::make_unique<TvmBackend>(true); },
        [] { return std::make_unique<TrtBackend>(); },
        [] { return std::make_unique<AStitchBackend>(); },
        [] {
            return std::make_unique<AStitchBackend>(
                AStitchBackend::withoutMerging());
        },
    };
    for (const auto &spec : workloads::inferenceWorkloads()) {
        const Graph graph = spec.build();
        for (const auto &make : backends) {
            SessionOptions options;
            options.validate_plans = true; // fatal on any defect
            Session session(graph, make(), options);
            EXPECT_NO_THROW(session.compile()) << spec.name;
        }
    }
}

TEST(PlanConsistency, RandomGraphSweep)
{
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        workloads::RandomGraphConfig config;
        config.num_nodes = 400;
        config.seed = seed;
        const Graph graph = workloads::buildRandomGraph(config);
        for (int which = 0; which < 2; ++which) {
            std::unique_ptr<Backend> backend;
            if (which == 0)
                backend = std::make_unique<XlaBackend>();
            else
                backend = std::make_unique<AStitchBackend>();
            Session session(graph, std::move(backend));
            session.compile();
            const auto &clusters = session.clusters();
            const auto &compiled = session.compiled();
            for (std::size_t i = 0; i < clusters.size(); ++i) {
                EXPECT_TRUE(consistencyFindings(graph, clusters[i],
                                                compiled[i], kV100)
                                .empty())
                    << "seed " << seed;
            }
        }
    }
}

} // namespace
} // namespace astitch
