/**
 * @file
 * Tests of the kernel-access verifier (AS7xx): the access-model
 * arithmetic, seeded mutations of real compiled plans that must each
 * fire exactly their diagnostic code, the zero-findings sweep over the
 * seed workloads on every shipped device, and the cost-model
 * transaction cross-check on the Fig. 5 / Fig. 7 paper graphs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "analysis/kernel_verifier.h"
#include "core/astitch_backend.h"
#include "graph/graph_builder.h"
#include "runtime/session.h"
#include "sim/cost_model.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

/** One seed workload compiled once with the AStitch backend on V100. */
struct CompiledWorkload
{
    std::string name;
    Graph graph;
    std::vector<CompiledCluster> compiled;
};

const std::deque<CompiledWorkload> &
compiledWorkloads()
{
    static const std::deque<CompiledWorkload> *cache = [] {
        auto *all = new std::deque<CompiledWorkload>;
        for (const auto &spec : workloads::inferenceWorkloads()) {
            all->push_back(CompiledWorkload{spec.name, spec.build(), {}});
            CompiledWorkload &wl = all->back();
            Session session(wl.graph,
                            std::make_unique<AStitchBackend>(),
                            SessionOptions{});
            session.compile();
            wl.compiled = session.compiled();
        }
        return all;
    }();
    return *cache;
}

/** Every check family off; tests switch on exactly the one under test
 * so a seeded mutation cannot leak findings across families. */
VerifierOptions
noChecks()
{
    VerifierOptions options;
    options.bounds = options.races = options.coalescing = false;
    options.bank_conflicts = options.recompute = false;
    options.cost_check = false;
    return options;
}

std::vector<std::string>
verify(const Graph &graph, const KernelPlan &plan,
       const VerifierOptions &options, DiagnosticEngine &engine)
{
    verifyKernelPlan(graph, plan, kV100, engine, options);
    std::vector<std::string> codes;
    for (const Diagnostic &d : engine.diagnostics())
        codes.push_back(d.code);
    return codes;
}

/** Off-chip races are only ordered by device-scope barriers. */
bool
orderedByDeviceBarrier(const KernelPlan &plan, int p, int q)
{
    const int lo = std::min(p, q);
    const int hi = std::max(p, q);
    return std::any_of(plan.barriers.begin(), plan.barriers.end(),
                       [&](const BarrierPoint &b) {
                           return b.after_op >= lo && b.after_op < hi &&
                                  b.scope == BarrierScope::Device;
                       });
}

/** Run @p mutate on every seed kernel until it reports it applied. */
template <typename Fn>
void
forFirstMatchingKernel(Fn &&mutate)
{
    for (const CompiledWorkload &wl : compiledWorkloads()) {
        for (const CompiledCluster &compiled : wl.compiled) {
            for (const KernelPlan &plan : compiled.kernels) {
                if (plan.accesses.empty())
                    continue;
                if (mutate(wl.graph, plan))
                    return;
            }
        }
    }
    FAIL() << "no seed kernel matched the mutation's precondition";
}

// ---------------------------------------------------------------------
// Access-model arithmetic.
// ---------------------------------------------------------------------

TEST(AccessModel, LinearEnumerationCoversTheExtent)
{
    const AffineIndex idx = linearEnumeration(1000, 4, 2, 128);
    EXPECT_EQ(idx.coeff_thread, 1);
    EXPECT_EQ(idx.coeff_iter, 128);
    EXPECT_EQ(idx.num_iters, 1); // 4*2*128 = 1024 >= 1000
    EXPECT_EQ(idx.coeff_task, 128);
    EXPECT_EQ(idx.coeff_block, 256);
    EXPECT_EQ(idx.minIndex(), 0);
    EXPECT_EQ(idx.maxIndex(), 1023);
    EXPECT_GE(idx.instances(), 1000);
}

TEST(AccessModel, LinearEnumerationAddsIterationsForLargeExtents)
{
    const AffineIndex idx = linearEnumeration(10000, 2, 1, 256);
    EXPECT_EQ(idx.num_iters, 20); // ceil(10000 / 512)
    EXPECT_GE(idx.maxIndex() + 1, 10000);
    // The enumeration visits each index at most once.
    EXPECT_EQ(idx.instances(), idx.maxIndex() - idx.minIndex() + 1);
}

TEST(AccessModel, GuardClampsTheEffectiveRange)
{
    OpAccess access;
    access.extent = 1000;
    access.index = linearEnumeration(1000, 4, 2, 128);
    EXPECT_GE(access.index.maxIndex(), access.extent); // overshoots
    access.guard = 1000;
    EXPECT_EQ(access.effectiveMax(), 999);
    EXPECT_EQ(access.touchedElements(), 1000);
}

TEST(AccessModel, SectorCountingMatchesWarpGeometry)
{
    EXPECT_EQ(sectorsPerWarp(0, 4), 1);  // broadcast
    EXPECT_EQ(sectorsPerWarp(1, 4), 4);  // 128B contiguous
    EXPECT_EQ(sectorsPerWarp(2, 4), 8);  // stride-2 column walk
    EXPECT_EQ(sectorsPerWarp(32, 4), 32); // capped at one per lane
    EXPECT_EQ(sectorsPerWarp(1, 8), 8);  // fp64 doubles the span
}

TEST(AccessModel, BankConflictDegreeFollowsWordStride)
{
    EXPECT_EQ(bankConflictDegree(0, 4), 1); // broadcast
    EXPECT_EQ(bankConflictDegree(1, 4), 1); // conflict-free
    EXPECT_EQ(bankConflictDegree(2, 4), 2);
    EXPECT_EQ(bankConflictDegree(32, 4), 32);
    EXPECT_EQ(bankConflictDegree(1, 8), 2); // 8B elements span 2 banks
}

TEST(AccessModel, TransactionsScaleWithStrideAndRepeat)
{
    OpAccess access;
    access.elem_bytes = 4;
    access.extent = 1024;
    access.index = linearEnumeration(1024, 1, 1, 1024);
    const double ideal = accessTransactions(access);
    EXPECT_DOUBLE_EQ(ideal, 1024.0 * 4 / 32);
    access.warp_stride = 2;
    EXPECT_DOUBLE_EQ(accessTransactions(access), 2 * ideal);
    access.warp_stride = 1;
    access.repeat = 3.0;
    EXPECT_DOUBLE_EQ(accessTransactions(access), 3 * ideal);
    access.counts_traffic = false;
    EXPECT_DOUBLE_EQ(accessTransactions(access), 0.0);
}

// ---------------------------------------------------------------------
// Diagnostic-code families.
// ---------------------------------------------------------------------

TEST(Diagnostics, FamilyOfNormalizesCodesAndFamilies)
{
    EXPECT_EQ(familyOf("AS701"), "AS7");
    EXPECT_EQ(familyOf("AS7"), "AS7");
    EXPECT_EQ(familyOf("as712"), "AS7");
    EXPECT_EQ(familyOf("AS101"), "AS1");
    EXPECT_EQ(familyOf(""), "");
    EXPECT_EQ(familyOf("AS"), "");
    EXPECT_EQ(familyOf("ASX01"), "");
    EXPECT_EQ(familyOf("XS701"), "");
}

TEST(Diagnostics, WithFamilySelectsOneFamily)
{
    DiagnosticEngine engine;
    engine.report("AS101", "k", "race");
    engine.report("AS701", "k", "oob");
    engine.report("AS751", "k", "mismatch");
    EXPECT_EQ(engine.withFamily("AS7").size(), 2u);
    EXPECT_EQ(engine.withFamily("as701").size(), 2u);
    EXPECT_EQ(engine.withFamily("AS1").size(), 1u);
    EXPECT_EQ(engine.withFamily("bogus").size(), 0u);
}

TEST(Diagnostics, EveryVerifierCodeIsRegistered)
{
    for (const char *code : {"AS701", "AS702", "AS703", "AS704", "AS711",
                             "AS712", "AS721", "AS731", "AS741", "AS751"}) {
        const DiagnosticCode *entry = findDiagnosticCode(code);
        ASSERT_NE(entry, nullptr) << code;
        EXPECT_EQ(familyOf(entry->code), "AS7");
    }
}

// ---------------------------------------------------------------------
// Baseline: the verifier proves every seed plan clean on every device.
// ---------------------------------------------------------------------

TEST(KernelVerifier, SeedWorkloadsVerifyCleanOnEveryDevice)
{
    for (const GpuSpec &spec :
         {GpuSpec::v100(), GpuSpec::t4(), GpuSpec::a100()}) {
        for (const auto &wlspec : workloads::inferenceWorkloads()) {
            const Graph graph = wlspec.build();
            SessionOptions options;
            options.spec = spec;
            Session session(graph, std::make_unique<AStitchBackend>(),
                            options);
            session.compile();
            DiagnosticEngine engine;
            for (const CompiledCluster &compiled : session.compiled())
                verifyCompiledCluster(session.activeGraph(), compiled,
                                      spec, engine);
            EXPECT_TRUE(engine.empty())
                << wlspec.name << " on " << spec.name << ":\n"
                << engine.renderText();
        }
    }
}

TEST(KernelVerifier, StitchedKernelsRecordAccessSummaries)
{
    bool any = false;
    for (const CompiledWorkload &wl : compiledWorkloads()) {
        for (const CompiledCluster &compiled : wl.compiled) {
            for (const KernelPlan &plan : compiled.kernels)
                any = any || !plan.accesses.empty();
        }
    }
    EXPECT_TRUE(any) << "no stitched kernel recorded access summaries";
}

// ---------------------------------------------------------------------
// Seeded mutations: each corruption fires exactly its AS7xx code.
// ---------------------------------------------------------------------

TEST(KernelVerifier, DroppedGuardIsAS701)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            if (a.space == AccessSpace::Shared ||
                a.kind != AccessKind::Read || a.guard < 0)
                continue;
            KernelPlan mutated = seed;
            mutated.accesses[i].guard = -1; // lost bounds predicate
            VerifierOptions options = noChecks();
            options.bounds = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS701"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, MisalignedArenaOffsetIsAS702)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            if (a.space != AccessSpace::Shared)
                continue;
            KernelPlan mutated = seed;
            // Slide the slot past the end of the arena.
            mutated.accesses[i].index.offset += a.extent;
            VerifierOptions options = noChecks();
            options.bounds = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS702"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, NegativeIndexIsAS703)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            // A guarded read: the guard keeps the top in range while the
            // shifted base dips below zero.
            if (a.space == AccessSpace::Shared ||
                a.kind != AccessKind::Read || a.guard < 0 ||
                a.index.offset != 0)
                continue;
            KernelPlan mutated = seed;
            mutated.accesses[i].index.offset = -1;
            VerifierOptions options = noChecks();
            options.bounds = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS703"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, ShrunkenTaskLoopIsAS704)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            if (a.space == AccessSpace::Shared ||
                a.kind != AccessKind::Write)
                continue;
            if (a.index.num_blocks * a.index.num_tasks <= 1)
                continue;
            // Collapse the block/task dimensions: only the first block's
            // first task's slice gets written.
            AffineIndex shrunk = a.index;
            shrunk.num_blocks = 1;
            shrunk.num_tasks = 1;
            if (shrunk.maxIndex() >= a.extent - 1)
                continue; // would still cover the buffer
            KernelPlan mutated = seed;
            mutated.accesses[i].index = shrunk;
            VerifierOptions options = noChecks();
            options.bounds = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS704"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, UnorderedOverlappingWritesAreAS711)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            // Output buffers are written once and never read in-kernel,
            // so a forged second writer races with exactly one partner.
            if (a.space != AccessSpace::Global ||
                a.kind != AccessKind::Write)
                continue;
            for (std::size_t q = 0; q < seed.ops.size(); ++q) {
                const int other = static_cast<int>(q);
                if (other == a.op_index ||
                    orderedByDeviceBarrier(seed, a.op_index, other))
                    continue;
                KernelPlan mutated = seed;
                OpAccess forged = a;
                forged.op_index = other;
                forged.index.offset += 1; // different mapping, overlaps
                mutated.accesses.push_back(forged);
                VerifierOptions options = noChecks();
                options.races = true;
                DiagnosticEngine engine;
                const auto codes =
                    verify(graph, mutated, options, engine);
                EXPECT_EQ(codes, std::vector<std::string>{"AS711"})
                    << engine.renderText();
                return true;
            }
        }
        return false;
    });
}

TEST(KernelVerifier, RemovedBarrierIsAS712)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (const OpAccess &w : seed.accesses) {
            if (w.kind != AccessKind::Write ||
                (w.space != AccessSpace::Shared &&
                 w.space != AccessSpace::Scratch))
                continue;
            for (const OpAccess &r : seed.accesses) {
                if (r.kind != AccessKind::Read ||
                    r.op_index == w.op_index ||
                    !rangesOverlap(w, r))
                    continue;
                // Remove every barrier ordering the pair.
                const int lo = std::min(w.op_index, r.op_index);
                const int hi = std::max(w.op_index, r.op_index);
                KernelPlan mutated = seed;
                const auto removed = std::remove_if(
                    mutated.barriers.begin(), mutated.barriers.end(),
                    [&](const BarrierPoint &b) {
                        return b.after_op >= lo && b.after_op < hi;
                    });
                if (removed == mutated.barriers.end())
                    continue; // pair was never barrier-ordered
                mutated.barriers.erase(removed, mutated.barriers.end());
                VerifierOptions options = noChecks();
                options.races = true;
                DiagnosticEngine engine;
                const auto codes =
                    verify(graph, mutated, options, engine);
                EXPECT_FALSE(codes.empty());
                for (const std::string &code : codes)
                    EXPECT_EQ(code, "AS712") << engine.renderText();
                return true;
            }
        }
        return false;
    });
}

TEST(KernelVerifier, CorruptedStrideIsAS721)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            if (a.space == AccessSpace::Shared || !a.counts_traffic)
                continue;
            KernelPlan mutated = seed;
            mutated.accesses[i].warp_stride = 32; // fully scattered warp
            VerifierOptions options = noChecks();
            options.coalescing = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS721"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, StridedArenaAccessIsAS731)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            if (seed.accesses[i].space != AccessSpace::Shared)
                continue;
            KernelPlan mutated = seed;
            mutated.accesses[i].warp_stride = 32; // all lanes on bank 0
            VerifierOptions options = noChecks();
            options.bank_conflicts = true;
            DiagnosticEngine engine;
            const auto codes = verify(graph, mutated, options, engine);
            EXPECT_EQ(codes, std::vector<std::string>{"AS731"})
                << engine.renderText();
            return true;
        }
        return false;
    });
}

TEST(KernelVerifier, RecomputeBlowupIsAS741)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        if (seed.ops.empty())
            return false;
        KernelPlan mutated = seed;
        mutated.ops[0].recompute_factor = 64.0; // Fig. 5 style inlining
        VerifierOptions options = noChecks();
        options.recompute = true;
        DiagnosticEngine engine;
        const auto codes = verify(graph, mutated, options, engine);
        EXPECT_EQ(codes, std::vector<std::string>{"AS741"})
            << engine.renderText();
        return true;
    });
}

TEST(KernelVerifier, CorruptedLoadFactorIsAS751)
{
    forFirstMatchingKernel([](const Graph &graph, const KernelPlan &seed) {
        std::size_t best = seed.accesses.size();
        double best_txn = 0.0;
        for (std::size_t i = 0; i < seed.accesses.size(); ++i) {
            const OpAccess &a = seed.accesses[i];
            if (a.kind != AccessKind::Read)
                continue;
            const double txn = accessTransactions(a);
            if (txn > best_txn) {
                best = i;
                best_txn = txn;
            }
        }
        if (best == seed.accesses.size() || best_txn < 1000.0)
            return false; // too small to clear the tolerance floor
        KernelPlan mutated = seed;
        mutated.accesses[best].repeat *= 8.0;
        VerifierOptions options = noChecks();
        options.cost_check = true;
        DiagnosticEngine engine;
        const auto codes = verify(graph, mutated, options, engine);
        EXPECT_EQ(codes, std::vector<std::string>{"AS751"})
            << engine.renderText();
        return true;
    });
}

// ---------------------------------------------------------------------
// Cost-model cross-check on the paper's Fig. 5 / Fig. 7 graphs.
// ---------------------------------------------------------------------

Graph
buildFig5Graph(std::int64_t rows, std::int64_t cols)
{
    Graph graph("fig5");
    GraphBuilder b(graph);
    NodeId vec = b.parameter({rows, 1}, "vec");
    NodeId wide = b.parameter({rows, cols}, "wide");
    NodeId pw = b.power(vec, 2.0);
    NodeId out = b.add(b.broadcastTo(pw, {rows, cols}), wide);
    graph.markOutput(out);
    return graph;
}

Graph
buildFig7Graph()
{
    Graph graph("fig7");
    GraphBuilder b(graph);
    const Shape wide{64, 128};
    NodeId p1 = b.parameter(wide, "param1");
    NodeId p2 = b.parameter({64, 1}, "param2");
    NodeId add1 = b.add(p1, p1);
    NodeId r1 = b.reduceSum(add1, {1});
    NodeId d1 = b.div(add1, b.broadcastTo(b.reshape(r1, {64, 1}), wide));
    NodeId pw = b.power(p2, 2.0);
    NodeId add2 = b.add(d1, b.broadcastTo(pw, wide));
    NodeId r2 = b.reduceSum(add2, {1});
    NodeId m1 = b.mul(r2, b.reshape(pw, {64}));
    graph.markOutput(m1);
    return graph;
}

void
expectTransactionAgreement(const Graph &graph)
{
    Session session(graph, std::make_unique<AStitchBackend>(),
                    SessionOptions{});
    session.compile();
    EXPECT_TRUE(session.diagnostics().empty())
        << session.diagnostics().renderText();
    const CostModel model(kV100);
    bool any = false;
    for (const CompiledCluster &compiled : session.compiled()) {
        for (const KernelPlan &plan : compiled.kernels) {
            if (plan.accesses.empty())
                continue;
            any = true;
            const TransactionEstimate est = staticTransactionCounts(plan);
            const KernelRecord record = model.priceKernel(
                workDescFor(session.activeGraph(), plan));
            const auto close = [](double verifier, double priced) {
                const double allowed = std::max(0.05 * priced, 16.0);
                EXPECT_NEAR(verifier, priced, allowed);
            };
            close(est.read_transactions,
                  static_cast<double>(record.dram_read_transactions));
            close(est.write_transactions,
                  static_cast<double>(record.dram_write_transactions));
        }
    }
    EXPECT_TRUE(any) << "no stitched kernel to cross-check";
}

TEST(KernelVerifier, TransactionCountsMatchCostModelOnFig5)
{
    expectTransactionAgreement(buildFig5Graph(512, 128));
}

TEST(KernelVerifier, TransactionCountsMatchCostModelOnFig7)
{
    expectTransactionAgreement(buildFig7Graph());
}

} // namespace
} // namespace astitch
