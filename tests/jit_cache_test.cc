/**
 * @file
 * Tests of the JIT cache: fingerprint sensitivity, LRU behaviour and
 * cross-session reuse.
 */
#include <gtest/gtest.h>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/jit_cache.h"
#include "runtime/session.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

TEST(Fingerprint, StableForIdenticalGraphs)
{
    Graph a = testing::buildSoftmax(8, 16);
    Graph b = testing::buildSoftmax(8, 16);
    EXPECT_EQ(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToShapes)
{
    Graph a = testing::buildSoftmax(8, 16);
    Graph b = testing::buildSoftmax(8, 32);
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToOpKind)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.tanh(ba.parameter({4})));
        GraphBuilder bb(b);
        b.markOutput(bb.exp(bb.parameter({4})));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToAttrs)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.power(ba.parameter({4}), 2.0));
        GraphBuilder bb(b);
        b.markOutput(bb.power(bb.parameter({4}), 3.0));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToConstantValues)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.mul(ba.parameter({4}), ba.constantScalar(2.0f)));
        GraphBuilder bb(b);
        b.markOutput(bb.mul(bb.parameter({4}), bb.constantScalar(3.0f)));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToOutputMarking)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        NodeId n = ba.tanh(ba.parameter({4}));
        a.markOutput(n);
        GraphBuilder bb(b);
        NodeId m = bb.tanh(bb.parameter({4}));
        b.markOutput(bb.graph().node(m).id());
        b.markOutput(bb.graph().parameters()[0]);
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(JitCache, HitAfterInsert)
{
    JitCache cache(4);
    EXPECT_EQ(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.misses(), 1);
    cache.insert("k", JitCacheEntry{});
    EXPECT_NE(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(JitCache, LruEviction)
{
    JitCache cache(2);
    cache.insert("a", JitCacheEntry{});
    cache.insert("b", JitCacheEntry{});
    // Touch "a" so "b" becomes the eviction victim.
    EXPECT_NE(cache.lookup("a"), nullptr);
    cache.insert("c", JitCacheEntry{});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup("a"), nullptr);
    EXPECT_EQ(cache.lookup("b"), nullptr);
    EXPECT_NE(cache.lookup("c"), nullptr);
}

TEST(JitCache, ReinsertRefreshes)
{
    JitCache cache(2);
    JitCacheEntry entry;
    entry.clusters.resize(1);
    cache.insert("a", JitCacheEntry{});
    cache.insert("a", std::move(entry));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup("a")->clusters.size(), 1u);
}

TEST(JitCache, KeySeparatesBackendAndDevice)
{
    Graph g = testing::buildSoftmax(8, 16);
    const std::string k1 =
        JitCache::makeKey(g, "xla", GpuSpec::v100());
    const std::string k2 =
        JitCache::makeKey(g, "astitch", GpuSpec::v100());
    const std::string k3 = JitCache::makeKey(g, "xla", GpuSpec::t4());
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, k3);
}

TEST(JitCache, SessionReusesCompilationAcrossSessions)
{
    JitCache::global().clear();
    Graph g = testing::buildSoftmax(256, 512);
    SessionOptions options;
    options.use_jit_cache = true;

    Session first(g, std::make_unique<AStitchBackend>(), options);
    first.compile();
    EXPECT_EQ(JitCache::global().misses(), 1);
    EXPECT_EQ(JitCache::global().size(), 1u);

    Session second(g, std::make_unique<AStitchBackend>(), options);
    second.compile();
    EXPECT_EQ(JitCache::global().hits(), 1);

    // Cached compilation behaves identically.
    const auto a = first.profile();
    const auto b = second.profile();
    EXPECT_EQ(a.memKernelCount(), b.memKernelCount());
    EXPECT_DOUBLE_EQ(a.end_to_end_us, b.end_to_end_us);
    JitCache::global().clear();
}

TEST(JitCache, CachedRunStillProducesCorrectValues)
{
    JitCache::global().clear();
    auto f = testing::buildFig7(4, 8);
    const TensorMap feeds{
        {f.param1, Tensor::iota({4, 8})},
        {f.param2, Tensor(Shape{4, 1}, {1, 2, 3, 4})},
    };
    const auto expected = Evaluator(f.graph).run(feeds);
    SessionOptions options;
    options.use_jit_cache = true;
    for (int round = 0; round < 2; ++round) {
        Session session(f.graph, std::make_unique<AStitchBackend>(),
                        options);
        const auto report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), 1u);
        EXPECT_TRUE(report.outputs[0].allClose(expected[0]));
    }
    EXPECT_EQ(JitCache::global().hits(), 1);
    JitCache::global().clear();
}

} // namespace
} // namespace astitch
