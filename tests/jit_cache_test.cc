/**
 * @file
 * Tests of the JIT cache: fingerprint sensitivity, LRU behaviour,
 * cross-session reuse, and the concurrency guarantees of
 * getOrCompile() (one compilation per key, no lost entries, no
 * stampedes).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/jit_cache.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "support/strings.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

TEST(Fingerprint, StableForIdenticalGraphs)
{
    Graph a = testing::buildSoftmax(8, 16);
    Graph b = testing::buildSoftmax(8, 16);
    EXPECT_EQ(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToShapes)
{
    Graph a = testing::buildSoftmax(8, 16);
    Graph b = testing::buildSoftmax(8, 32);
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToOpKind)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.tanh(ba.parameter({4})));
        GraphBuilder bb(b);
        b.markOutput(bb.exp(bb.parameter({4})));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToAttrs)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.power(ba.parameter({4}), 2.0));
        GraphBuilder bb(b);
        b.markOutput(bb.power(bb.parameter({4}), 3.0));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToConstantValues)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        a.markOutput(ba.mul(ba.parameter({4}), ba.constantScalar(2.0f)));
        GraphBuilder bb(b);
        b.markOutput(bb.mul(bb.parameter({4}), bb.constantScalar(3.0f)));
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(Fingerprint, SensitiveToOutputMarking)
{
    Graph a, b;
    {
        GraphBuilder ba(a);
        NodeId n = ba.tanh(ba.parameter({4}));
        a.markOutput(n);
        GraphBuilder bb(b);
        NodeId m = bb.tanh(bb.parameter({4}));
        b.markOutput(bb.graph().node(m).id());
        b.markOutput(bb.graph().parameters()[0]);
    }
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));
}

TEST(JitCache, HitAfterInsert)
{
    JitCache cache(4);
    EXPECT_EQ(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.misses(), 1);
    cache.insert("k", JitCacheEntry{});
    EXPECT_NE(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(JitCache, LruEviction)
{
    JitCache cache(2);
    cache.insert("a", JitCacheEntry{});
    cache.insert("b", JitCacheEntry{});
    // Touch "a" so "b" becomes the eviction victim.
    EXPECT_NE(cache.lookup("a"), nullptr);
    cache.insert("c", JitCacheEntry{});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup("a"), nullptr);
    EXPECT_EQ(cache.lookup("b"), nullptr);
    EXPECT_NE(cache.lookup("c"), nullptr);
}

TEST(JitCache, ReinsertRefreshes)
{
    JitCache cache(2);
    JitCacheEntry entry;
    entry.clusters.resize(1);
    cache.insert("a", JitCacheEntry{});
    cache.insert("a", std::move(entry));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup("a")->clusters.size(), 1u);
}

TEST(JitCache, KeySeparatesBackendAndDevice)
{
    Graph g = testing::buildSoftmax(8, 16);
    const std::string k1 =
        JitCache::makeKey(g, "xla", GpuSpec::v100());
    const std::string k2 =
        JitCache::makeKey(g, "astitch", GpuSpec::v100());
    const std::string k3 = JitCache::makeKey(g, "xla", GpuSpec::t4());
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, k3);
}

TEST(JitCache, SessionReusesCompilationAcrossSessions)
{
    JitCache::global().clear();
    Graph g = testing::buildSoftmax(256, 512);
    SessionOptions options;
    options.use_jit_cache = true;

    Session first(g, std::make_unique<AStitchBackend>(), options);
    first.compile();
    EXPECT_EQ(JitCache::global().misses(), 1);
    EXPECT_EQ(JitCache::global().size(), 1u);

    Session second(g, std::make_unique<AStitchBackend>(), options);
    second.compile();
    EXPECT_EQ(JitCache::global().hits(), 1);

    // Cached compilation behaves identically.
    const auto a = first.profile();
    const auto b = second.profile();
    EXPECT_EQ(a.memKernelCount(), b.memKernelCount());
    EXPECT_DOUBLE_EQ(a.end_to_end_us, b.end_to_end_us);
    JitCache::global().clear();
}

TEST(JitCache, EntriesAreSharedNotCopied)
{
    JitCache cache(4);
    JitCacheEntry entry;
    entry.clusters.resize(3);
    cache.insert("k", std::move(entry));
    const auto a = cache.lookup("k");
    const auto b = cache.lookup("k");
    // Copy-free: every hit hands out the same immutable entry.
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->clusters.size(), 3u);
}

TEST(JitCache, SharedEntrySurvivesEviction)
{
    JitCache cache(1);
    JitCacheEntry entry;
    entry.clusters.resize(2);
    cache.insert("a", std::move(entry));
    const auto held = cache.lookup("a");
    cache.insert("b", JitCacheEntry{}); // evicts "a"
    EXPECT_EQ(cache.lookup("a"), nullptr);
    EXPECT_EQ(held->clusters.size(), 2u); // still alive for the holder
}

TEST(JitCache, StatsSnapshotIsConsistent)
{
    JitCache cache(4);
    cache.lookup("missing");
    cache.insert("k", JitCacheEntry{});
    cache.lookup("k");
    const JitCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.coalesced, 0);
    EXPECT_EQ(stats.size, 1u);
    EXPECT_EQ(stats.capacity, 4u);
}

TEST(JitCache, GetOrCompileCompilesOnceThenHits)
{
    JitCache cache(4);
    std::atomic<int> compiles{0};
    auto fn = [&] {
        compiles.fetch_add(1);
        JitCacheEntry entry;
        entry.clusters.resize(1);
        return entry;
    };
    const auto first = cache.getOrCompile("k", fn);
    const auto second = cache.getOrCompile("k", fn);
    EXPECT_EQ(compiles.load(), 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);
}

TEST(JitCache, GetOrCompileDoesNotCacheFailures)
{
    JitCache cache(4);
    int calls = 0;
    auto failing = [&]() -> JitCacheEntry {
        ++calls;
        fatal("backend exploded");
    };
    EXPECT_THROW(cache.getOrCompile("k", failing), FatalError);
    EXPECT_EQ(cache.size(), 0u);
    // The key is retryable after a failure.
    EXPECT_THROW(cache.getOrCompile("k", failing), FatalError);
    EXPECT_EQ(calls, 2);
    EXPECT_NE(cache.getOrCompile("k", [] { return JitCacheEntry{}; }),
              nullptr);
}

TEST(JitCache, ConcurrentGetOrCompileIsSingleFlightPerKey)
{
    // Many threads hammer overlapping keys; each key must compile
    // exactly once, every caller must receive the key's entry, and no
    // entry may be lost.
    JitCache cache(64);
    constexpr int kKeys = 8;
    constexpr int kThreads = 16;
    std::vector<std::atomic<int>> compiles(kKeys);
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 40; ++round) {
                const int k = (t + round) % kKeys;
                const auto entry = cache.getOrCompile(
                    strCat("key", k), [&compiles, k] {
                        compiles[k].fetch_add(1);
                        // Widen the in-flight window so stampedes
                        // would actually collide.
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                        JitCacheEntry e;
                        e.clusters.resize(
                            static_cast<std::size_t>(k) + 1);
                        return e;
                    });
                if (!entry ||
                    entry->clusters.size() !=
                        static_cast<std::size_t>(k) + 1)
                    mismatch.store(true);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_FALSE(mismatch.load());
    for (const auto &c : compiles)
        EXPECT_EQ(c.load(), 1);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
    const JitCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, kKeys);
    EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
              kThreads * 40);
}

TEST(JitCache, ConcurrentSessionsShareOneCompilation)
{
    JitCache::global().clear();
    Graph g = testing::buildSoftmax(128, 256);
    SessionOptions options;
    options.use_jit_cache = true;
    options.compile_threads = 1;
    std::vector<std::thread> threads;
    std::atomic<int> kernel_counts{-1};
    std::atomic<bool> divergent{false};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            Session session(g, std::make_unique<AStitchBackend>(),
                            options);
            const int kernels = session.profile().memKernelCount();
            int expected = -1;
            if (!kernel_counts.compare_exchange_strong(expected,
                                                       kernels) &&
                expected != kernels)
                divergent.store(true);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_FALSE(divergent.load());
    // One compilation total: everyone else hit or joined in flight.
    EXPECT_EQ(JitCache::global().misses(), 1);
    EXPECT_EQ(JitCache::global().size(), 1u);
    JitCache::global().clear();
}

TEST(JitCache, CachedRunStillProducesCorrectValues)
{
    JitCache::global().clear();
    auto f = testing::buildFig7(4, 8);
    const TensorMap feeds{
        {f.param1, Tensor::iota({4, 8})},
        {f.param2, Tensor(Shape{4, 1}, {1, 2, 3, 4})},
    };
    const auto expected = Evaluator(f.graph).run(feeds);
    SessionOptions options;
    options.use_jit_cache = true;
    for (int round = 0; round < 2; ++round) {
        Session session(f.graph, std::make_unique<AStitchBackend>(),
                        options);
        const auto report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), 1u);
        EXPECT_TRUE(report.outputs[0].allClose(expected[0]));
    }
    EXPECT_EQ(JitCache::global().hits(), 1);
    JitCache::global().clear();
}

} // namespace
} // namespace astitch
