/**
 * @file
 * Fault-injection sweep: every registered fault site, injected one at a
 * time over the five paper workloads. Each case must compile without an
 * uncaught exception, execute, match the kernel-per-op reference
 * outputs, and report the degradation shape the site implies. The sweep
 * iterates the live registry, so adding a fault site without
 * categorizing it here fails the test.
 */
#include <gtest/gtest.h>

#include "backends/tf/tf_backend.h"
#include "core/astitch_backend.h"
#include "runtime/jit_cache.h"
#include "runtime/session.h"
#include "support/fault_injection.h"
#include "workloads/asr.h"
#include "workloads/bert.h"
#include "workloads/common.h"
#include "workloads/crnn.h"
#include "workloads/dien.h"
#include "workloads/transformer.h"

namespace astitch {
namespace {

/** Session knobs a site needs before its fault point is reachable. */
SessionOptions
optionsForSite(const std::string &site)
{
    SessionOptions options;
    options.compile_threads = 1; // deterministic hit order
    if (site == "thread-pool-task") {
        options.compile_threads = 2; // serial loops never hit the site
    } else if (site == "cache-publish") {
        options.use_jit_cache = true;
        JitCache::global().clear(); // force a miss so publish runs
    } else if (site == "cache-read-corrupt" ||
               site == "cache-write-fail" ||
               site == "cache-lock-timeout") {
        // Disk-tier sites are dead code without an artifact cache.
        // Sharing one directory per site across the sweep's two runs
        // also exercises the warm path: the permanent run stores the
        // artifact, the transient run reads it back through the fault.
        options.artifact_cache_dir =
            ::testing::TempDir() + "astitch_fault_sweep_" + site;
    }
    return options;
}

void
expectSameOutputs(const std::vector<Tensor> &got,
                  const std::vector<Tensor> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].allClose(want[i], 1e-4, 1e-5))
            << "output " << i << " diverged from the reference";
}

/** What a permanent fault at each site must degrade. */
void
expectDegradationShape(const std::string &site,
                       const DegradationReport &report)
{
    if (site == "clustering") {
        EXPECT_TRUE(report.clustering_fallback);
    } else if (site == "thread-pool-task") {
        EXPECT_TRUE(report.serial_fallback);
        EXPECT_EQ(report.maxLevel(), LadderLevel::FullStitch);
    } else if (site == "cache-publish") {
        EXPECT_TRUE(report.cache_bypassed);
        EXPECT_EQ(report.maxLevel(), LadderLevel::FullStitch);
    } else if (site == "ladder-local-only" ||
               site == "ladder-loop-fusion") {
        // Fallback rungs are dead code while rung 0 succeeds.
        EXPECT_FALSE(report.degraded());
    } else if (site == "cache-read-corrupt" ||
               site == "cache-write-fail" ||
               site == "cache-lock-timeout") {
        // Disk-tier faults surface as AS62x diagnostics plus a clean
        // in-memory recompile — never as ladder degradation.
        EXPECT_FALSE(report.degraded());
    } else {
        // Stitch-pipeline sites (backend-compile, clustering phases,
        // codegen, planners): clusters demote down the ladder.
        EXPECT_TRUE(report.degraded());
        EXPECT_GE(report.maxLevel(), LadderLevel::LocalOnly);
        EXPECT_GT(report.numDegradedClusters(), 0);
    }
}

void
sweepWorkload(const Graph &graph)
{
    const TensorMap feeds = workloads::makeRandomFeeds(graph, 7);
    std::vector<Tensor> want;
    {
        Session reference(graph, std::make_unique<TfBackend>());
        want = reference.run(feeds).outputs;
    }

    for (const FaultSite &site : faultSites()) {
        const std::string name = site.name;

        // Permanent fault: fires on every hit; the ladder must absorb
        // it and still produce the reference outputs.
        {
            SCOPED_TRACE("permanent fault at " + name);
            SessionOptions options = optionsForSite(name);
            options.fault_plan = name;
            Session session(graph, std::make_unique<AStitchBackend>(),
                            options);
            ASSERT_NO_THROW(session.compile());
            expectDegradationShape(name, session.degradation());
            RunReport report;
            ASSERT_NO_THROW(report = session.run(feeds));
            expectSameOutputs(report.outputs, want);
        }

        // Single transient fault: the recovery paths retry in place, so
        // nothing may demote below full stitch.
        {
            SCOPED_TRACE("transient fault at " + name);
            SessionOptions options = optionsForSite(name);
            options.fault_plan = name + ":1";
            Session session(graph, std::make_unique<AStitchBackend>(),
                            options);
            ASSERT_NO_THROW(session.compile());
            EXPECT_EQ(session.degradation().maxLevel(),
                      LadderLevel::FullStitch);
            EXPECT_FALSE(session.degradation().clustering_fallback);
            RunReport report;
            ASSERT_NO_THROW(report = session.run(feeds));
            expectSameOutputs(report.outputs, want);
        }
    }
    JitCache::global().clear();
}

TEST(FaultSweep, Bert)
{
    sweepWorkload(workloads::buildBert(workloads::BertConfig::tiny()));
}

TEST(FaultSweep, Transformer)
{
    sweepWorkload(
        workloads::buildTransformer(workloads::TransformerConfig::tiny()));
}

TEST(FaultSweep, Dien)
{
    sweepWorkload(workloads::buildDien(workloads::DienConfig::tiny()));
}

TEST(FaultSweep, Asr)
{
    sweepWorkload(workloads::buildAsr(workloads::AsrConfig::tiny()));
}

TEST(FaultSweep, Crnn)
{
    sweepWorkload(workloads::buildCrnn(workloads::CrnnConfig::tiny()));
}

} // namespace
} // namespace astitch
