/**
 * @file
 * Determinism of the parallel JIT pipeline: any compile_threads value
 * must yield bit-identical kernel plans, diagnostics and simulated
 * timings, because per-cluster results commit in cluster order no
 * matter which thread produced them.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "test_graphs.h"
#include "workloads/asr.h"
#include "workloads/bert.h"
#include "workloads/dien.h"

namespace astitch {
namespace {

/** Serialize every field of a compiled cluster that reaches the cost
 * model or the sanitizer, so equality means plan-level identity. */
std::string
serializeCompilation(const std::vector<CompiledCluster> &compiled)
{
    std::ostringstream out;
    for (const CompiledCluster &cluster : compiled) {
        out << "cluster cpy=" << cluster.num_memcpy << ":"
            << cluster.memcpy_bytes
            << " scratch=" << cluster.global_scratch_bytes << "\n";
        for (const KernelPlan &k : cluster.kernels) {
            out << k.name << " " << k.launch.toString() << " regs="
                << k.regs_per_thread << " smem=" << k.smem_per_block
                << " bar=" << k.num_block_barriers << "/"
                << k.num_global_barriers << " atomics="
                << k.atomic_operations << " coal=" << k.read_coalescing
                << "/" << k.write_coalescing << " extra="
                << k.extra_launch_overhead_us << ":"
                << k.extra_bytes_read << "\n";
            for (const ScheduledOp &op : k.ops) {
                out << "  op " << op.node << " x" << op.recompute_factor
                    << " " << bufferSpaceName(op.out_space) << " part="
                    << op.partition.launch.toString() << ":"
                    << op.partition.rows_per_block << ":"
                    << op.partition.tasks_per_block << "\n";
            }
            for (const KernelInput &in : k.inputs)
                out << "  in " << in.node << " x" << in.load_factor
                    << "\n";
            for (NodeId o : k.outputs)
                out << "  out " << o << "\n";
            for (const BarrierPoint &b : k.barriers)
                out << "  barrier after=" << b.after_op << " "
                    << barrierScopeName(b.scope) << " trips="
                    << b.trip_count << "\n";
            for (const SharedSlot &s : k.shared_slots)
                out << "  slot " << s.node << " @" << s.offset_bytes
                    << "+" << s.size_bytes << "\n";
        }
    }
    return out.str();
}

void
expectThreadCountInvariant(const Graph &graph, bool astitch)
{
    auto makeBackend = [&]() -> std::unique_ptr<Backend> {
        if (astitch)
            return std::make_unique<AStitchBackend>();
        return std::make_unique<XlaBackend>();
    };
    SessionOptions serial;
    serial.compile_threads = 1;
    SessionOptions parallel;
    parallel.compile_threads = 8;

    Session a(graph, makeBackend(), serial);
    Session b(graph, makeBackend(), parallel);

    EXPECT_EQ(serializeCompilation(a.compiled()),
              serializeCompilation(b.compiled()));
    EXPECT_EQ(a.diagnostics().renderJson(), b.diagnostics().renderJson());

    const RunReport ra = a.profile();
    const RunReport rb = b.profile();
    EXPECT_DOUBLE_EQ(ra.end_to_end_us, rb.end_to_end_us);
    EXPECT_EQ(ra.num_clusters, rb.num_clusters);
    EXPECT_EQ(ra.memKernelCount(), rb.memKernelCount());
    EXPECT_EQ(ra.cpyCount(), rb.cpyCount());
    ASSERT_EQ(ra.counters.kernels.size(), rb.counters.kernels.size());
    for (std::size_t i = 0; i < ra.counters.kernels.size(); ++i) {
        EXPECT_EQ(ra.counters.kernels[i].name,
                  rb.counters.kernels[i].name);
        EXPECT_DOUBLE_EQ(ra.counters.kernels[i].time_us,
                         rb.counters.kernels[i].time_us);
    }
}

TEST(ParallelCompile, BertIsThreadCountInvariant)
{
    expectThreadCountInvariant(workloads::buildBert(), true);
}

TEST(ParallelCompile, DienIsThreadCountInvariant)
{
    expectThreadCountInvariant(workloads::buildDien(), true);
}

TEST(ParallelCompile, AsrIsThreadCountInvariant)
{
    expectThreadCountInvariant(workloads::buildAsr(), true);
}

TEST(ParallelCompile, ComparatorBackendIsThreadCountInvariant)
{
    expectThreadCountInvariant(workloads::buildBert(), false);
}

TEST(ParallelCompile, CompileErrorsSurfaceUnderAnyThreadCount)
{
    // A backend whose plans fail structural validation must fatal() for
    // every thread count, with the deterministic (first-cluster) error.
    class BrokenBackend : public Backend
    {
      public:
        std::string name() const override { return "broken"; }
        CompiledCluster compileCluster(const Graph &, const Cluster &,
                                       const GpuSpec &) const override
        {
            CompiledCluster compiled;
            KernelPlan plan;
            plan.name = "empty_plan"; // schedules none of the cluster
            compiled.kernels.push_back(plan);
            return compiled;
        }
    };
    Graph g = testing::buildSoftmax(64, 64);
    for (int threads : {1, 8}) {
        SessionOptions options;
        options.compile_threads = threads;
        Session session(g, std::make_unique<BrokenBackend>(), options);
        EXPECT_THROW(session.compile(), FatalError);
    }
}

TEST(ParallelCompile, ManyClustersCoverPoolQueueing)
{
    // More clusters than threads: every cluster must land in its slot.
    Graph g;
    {
        GraphBuilder b(g);
        for (int i = 0; i < 40; ++i)
            g.markOutput(b.tanh(b.exp(b.parameter({32, 8}))));
    }
    SessionOptions serial;
    serial.compile_threads = 1;
    SessionOptions parallel;
    parallel.compile_threads = 8;
    // XLA keeps the 40 chains as 40 clusters (no remote stitching).
    Session a(g, std::make_unique<XlaBackend>(), serial);
    Session b(g, std::make_unique<XlaBackend>(), parallel);
    ASSERT_EQ(a.clusters().size(), b.clusters().size());
    EXPECT_GT(a.clusters().size(), 8u);
    EXPECT_EQ(serializeCompilation(a.compiled()),
              serializeCompilation(b.compiled()));
}

} // namespace
} // namespace astitch
