/**
 * @file
 * Deep structural tests of the workload generators: per-model operator
 * inventories, layer scaling, training-graph contents, interaction with
 * the optimizer pipeline and cross-device compilation.
 */
#include <gtest/gtest.h>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "opt/passes.h"
#include "runtime/session.h"
#include "workloads/asr.h"
#include "workloads/bert.h"
#include "workloads/common.h"
#include "workloads/crnn.h"
#include "workloads/dien.h"
#include "workloads/transformer.h"

namespace astitch {
namespace {

using namespace workloads;

int
countKind(const Graph &g, OpKind kind)
{
    int count = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id)
        count += g.node(id).kind() == kind;
    return count;
}

TEST(BertStructure, ScalesLinearlyWithLayers)
{
    BertConfig two = BertConfig::tiny();
    two.layers = 2;
    BertConfig four = BertConfig::tiny();
    four.layers = 4;
    const Graph g2 = buildBert(two);
    const Graph g4 = buildBert(four);
    // Per-layer op population roughly doubles; the fixed head/embedding
    // parts do not.
    EXPECT_GT(g4.numNodes(), 1.6 * g2.numNodes());
    EXPECT_LT(g4.numNodes(), 2.4 * g2.numNodes());
}

TEST(BertStructure, AttentionUsesBatchedMatmulsAndSoftmax)
{
    const Graph g = buildBert(BertConfig::tiny());
    // Two batched matmuls (scores, context) per layer.
    EXPECT_EQ(countKind(g, OpKind::BatchMatMul), 2 * 2);
    // One transpose (k^T) per layer.
    EXPECT_EQ(countKind(g, OpKind::Transpose), 2);
}

TEST(BertStructure, TrainingGraphContainsMatmulGradients)
{
    const Graph infer = buildBert(BertConfig::tiny());
    BertConfig train_config = BertConfig::tiny();
    train_config.is_training = true;
    const Graph train = buildBert(train_config);
    // Backward adds transposed-matmul pairs for every forward GEMM.
    EXPECT_GT(countKind(train, OpKind::MatMul),
              1.8 * countKind(infer, OpKind::MatMul));
    EXPECT_GT(countKind(train, OpKind::Transpose),
              countKind(infer, OpKind::Transpose));
    // One gradient output per trainable parameter plus the loss.
    EXPECT_EQ(train.outputs().size(), train.parameters().size() + 1);
}

TEST(TransformerStructure, VocabProjectionIsTheLargestMatmul)
{
    const Graph g =
        buildTransformer(TransformerConfig::inference());
    std::int64_t largest = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        if (g.node(id).kind() == OpKind::MatMul)
            largest = std::max(largest,
                               g.node(id).shape().numElements());
    }
    EXPECT_EQ(largest, 64 * 30000);
}

TEST(TransformerStructure, TrainingTargetsFeedCrossEntropy)
{
    const Graph g =
        buildTransformer(TransformerConfig::tiny());
    (void)g;
    TransformerConfig config = TransformerConfig::tiny();
    config.is_training = true;
    const Graph train = buildTransformer(config);
    bool has_targets = false;
    for (NodeId p : train.parameters())
        has_targets |= train.node(p).name() == "targets";
    EXPECT_TRUE(has_targets);
}

TEST(DienStructure, GruStepsScaleTheGraph)
{
    DienConfig two = DienConfig::tiny();
    two.gru_steps = 2;
    DienConfig six = DienConfig::tiny();
    six.gru_steps = 6;
    EXPECT_GT(buildDien(six).numNodes(), buildDien(two).numNodes() + 40);
}

TEST(DienStructure, InterestPipelineUsesSigmoidGating)
{
    const Graph g = buildDien(DienConfig::tiny());
    EXPECT_GE(countKind(g, OpKind::Sigmoid), 1 + 2); // gate + GRU z,r
    EXPECT_GE(countKind(g, OpKind::Gather), 1);
}

TEST(AsrStructure, DecoderStepsEmitAttentionReduces)
{
    AsrConfig two = AsrConfig::tiny();
    two.decoder_steps = 2;
    AsrConfig five = AsrConfig::tiny();
    five.decoder_steps = 5;
    const Graph g2 = buildAsr(two);
    const Graph g5 = buildAsr(five);
    auto reduces = [&](const Graph &g) {
        int count = 0;
        for (NodeId id = 0; id < g.numNodes(); ++id)
            count += isReduce(g.node(id).kind());
        return count;
    };
    // Each decoder step adds the additive-attention reduce + softmax.
    EXPECT_GE(reduces(g5), reduces(g2) + 3 * 3);
}

TEST(CrnnStructure, PoolingPyramidShrinksRows)
{
    const Graph g = buildCrnn(CrnnConfig::inference());
    // The conv stack starts at 65536 rows and pools to 4096.
    bool saw_full = false, saw_pooled = false;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        const Shape &s = g.node(id).shape();
        if (s.rank() == 2 && s.dim(0) == 65536)
            saw_full = true;
        if (s.rank() == 2 && s.dim(0) == 4096)
            saw_pooled = true;
    }
    EXPECT_TRUE(saw_full);
    EXPECT_TRUE(saw_pooled);
}

TEST(CrnnStructure, BidirectionalLstmDoublesStepKernels)
{
    CrnnConfig config = CrnnConfig::tiny();
    const Graph g = buildCrnn(config);
    // 4 gates x 2 matmuls per cell x 2 directions x steps.
    EXPECT_GE(countKind(g, OpKind::MatMul),
              4 * 2 * 2 * config.time_steps);
}

TEST(WorkloadsUnderOptimizer, PipelineShrinksEveryModel)
{
    for (const auto &spec : inferenceWorkloads()) {
        const Graph g = spec.build();
        PassPipeline pipeline = PassPipeline::standard();
        const Graph out = pipeline.run(g);
        EXPECT_LE(out.numNodes(), g.numNodes()) << spec.name;
        // Constant dedup always finds something (gelu/eps constants).
        EXPECT_LT(countKind(out, OpKind::Constant),
                  countKind(g, OpKind::Constant) + 1)
            << spec.name;
        EXPECT_EQ(out.outputs().size(), g.outputs().size()) << spec.name;
    }
}

TEST(WorkloadsUnderOptimizer, OptimizedTinyModelsStayCorrect)
{
    const std::vector<Graph> graphs = [] {
        std::vector<Graph> gs;
        gs.push_back(buildBert(BertConfig::tiny()));
        gs.push_back(buildCrnn(CrnnConfig::tiny()));
        gs.push_back(buildDien(DienConfig::tiny()));
        return gs;
    }();
    for (const Graph &g : graphs) {
        const TensorMap feeds = makeRandomFeeds(g);
        const auto expected = Evaluator(g).run(feeds);
        SessionOptions options;
        options.enable_optimizer = true;
        Session session(g, std::make_unique<AStitchBackend>(), options);
        const auto report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), expected.size()) << g.name();
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(
                report.outputs[i].allClose(expected[i], 1e-4, 1e-5))
                << g.name() << " output " << i;
        }
    }
}

TEST(CrossDevice, EveryModelCompilesOnEveryGpu)
{
    for (const auto &spec : inferenceWorkloads()) {
        const Graph g = spec.build();
        for (const GpuSpec &gpu :
             {GpuSpec::v100(), GpuSpec::t4(), GpuSpec::a100()}) {
            SessionOptions options;
            options.spec = gpu;
            Session session(g, std::make_unique<AStitchBackend>(),
                            options);
            EXPECT_NO_THROW(session.profile())
                << spec.name << " on " << gpu.name;
        }
    }
}

TEST(CrossDevice, WaveCapacityDiffersAcrossGpus)
{
    // The same stitched kernel obeys each device's wave bound.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({500000, 32});
    g.markOutput(b.reduceSum(b.mul(x, x), {1}));
    for (const GpuSpec &gpu : {GpuSpec::v100(), GpuSpec::t4()}) {
        SessionOptions options;
        options.spec = gpu;
        Session session(g, std::make_unique<AStitchBackend>(), options);
        for (const auto &compiled : session.compiled()) {
            for (const auto &k : compiled.kernels) {
                const Occupancy occ = computeOccupancy(
                    gpu, k.launch.block, k.regs_per_thread,
                    k.smem_per_block);
                EXPECT_LE(k.launch.grid, occ.blocksPerWave(gpu))
                    << gpu.name;
            }
        }
    }
}

TEST(TrainingWorkloads, AllThreeCompileAndValidateUnderAStitch)
{
    for (const auto &spec : trainingWorkloads()) {
        const Graph g = spec.build();
        EXPECT_GT(g.outputs().size(), 10u) << spec.name
                                           << " gradient outputs";
        Session session(g, std::make_unique<AStitchBackend>());
        EXPECT_NO_THROW(session.profile()) << spec.name;
    }
}

} // namespace
} // namespace astitch
