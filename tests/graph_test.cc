/**
 * @file
 * Unit tests for the graph IR: op kinds, builder, shape inference,
 * traversal and DOT export.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include "graph/dot_export.h"
#include "graph/graph_builder.h"
#include "graph/shape_inference.h"
#include "graph/traversal.h"

namespace astitch {
namespace {

TEST(OpKind, Classification)
{
    EXPECT_TRUE(isLightElementwise(OpKind::Add));
    EXPECT_TRUE(isLightElementwise(OpKind::Broadcast));
    EXPECT_TRUE(isHeavyElementwise(OpKind::Power));
    EXPECT_TRUE(isHeavyElementwise(OpKind::Tanh));
    EXPECT_FALSE(isHeavyElementwise(OpKind::Add));
    EXPECT_TRUE(isReduce(OpKind::ReduceMax));
    EXPECT_TRUE(isComputeIntensive(OpKind::MatMul));
    EXPECT_TRUE(isMemoryIntensive(OpKind::ReduceSum));
    EXPECT_TRUE(isMemoryIntensive(OpKind::Exp));
    EXPECT_FALSE(isMemoryIntensive(OpKind::BatchMatMul));
    EXPECT_TRUE(isSource(OpKind::Parameter));
}

TEST(OpKind, HeavyOpsCostMoreInstructions)
{
    // The heavy/light split drives the pattern-(2) fusion decisions.
    EXPECT_GT(opInstructionsPerElement(OpKind::Power),
              10 * opInstructionsPerElement(OpKind::Add));
    EXPECT_GT(opInstructionsPerElement(OpKind::Tanh),
              opInstructionsPerElement(OpKind::Sqrt));
}

TEST(OpKind, Arity)
{
    EXPECT_EQ(opKindArity(OpKind::Parameter), 0);
    EXPECT_EQ(opKindArity(OpKind::Tanh), 1);
    EXPECT_EQ(opKindArity(OpKind::Add), 2);
    EXPECT_EQ(opKindArity(OpKind::Select), 3);
    EXPECT_EQ(opKindArity(OpKind::Concat), -1);
}

TEST(Graph, AddNodeValidatesOperands)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    EXPECT_NO_THROW(b.neg(p));
    EXPECT_THROW(
        g.addNode(OpKind::Neg, {99}, {}, Shape{4}, DType::F32),
        FatalError);
    EXPECT_THROW(
        g.addNode(OpKind::Add, {p}, {}, Shape{4}, DType::F32),
        FatalError);
}

TEST(Graph, UsersTrackConsumers)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId n1 = b.neg(p);
    NodeId n2 = b.abs(p);
    const auto &users = g.users(p);
    ASSERT_EQ(users.size(), 2u);
    EXPECT_EQ(users[0], n1);
    EXPECT_EQ(users[1], n2);
}

TEST(Graph, SelfPairedOperandCountedOnceInUsers)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId s = b.add(p, p);
    EXPECT_EQ(g.users(p).size(), 1u);
    EXPECT_EQ(g.node(s).operands().size(), 2u);
}

TEST(Graph, OutputsAreDeduplicated)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId n = b.neg(p);
    g.markOutput(n);
    g.markOutput(n);
    EXPECT_EQ(g.outputs().size(), 1u);
    EXPECT_TRUE(g.isOutput(n));
    EXPECT_FALSE(g.isOutput(p));
}

TEST(Graph, ParametersListedInOrder)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p0 = b.parameter({1});
    b.neg(p0);
    NodeId p1 = b.parameter({2});
    const auto params = g.parameters();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0], p0);
    EXPECT_EQ(params[1], p1);
}

TEST(Builder, BinaryShapeInferenceBroadcasts)
{
    Graph g;
    GraphBuilder b(g);
    NodeId a = b.parameter({2, 1});
    NodeId c = b.parameter({2, 128});
    NodeId sum = b.add(a, c);
    EXPECT_EQ(g.node(sum).shape(), (Shape{2, 128}));
}

TEST(Builder, ReduceShapeInference)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({750000, 32});
    NodeId r = b.reduceSum(x, {1});
    EXPECT_EQ(g.node(r).shape(), (Shape{750000}));
}

TEST(Builder, BroadcastRequiresCompatibleTarget)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2});
    EXPECT_THROW(b.broadcastTo(x, {3, 5}), FatalError);
    NodeId ok = b.broadcastTo(x, {3, 2});
    EXPECT_EQ(g.node(ok).shape(), (Shape{3, 2}));
}

TEST(Builder, MatmulShapeChecks)
{
    Graph g;
    GraphBuilder b(g);
    NodeId a = b.parameter({4, 8});
    NodeId w = b.parameter({8, 16});
    EXPECT_EQ(g.node(b.matmul(a, w)).shape(), (Shape{4, 16}));
    NodeId bad = b.parameter({7, 16});
    EXPECT_THROW(b.matmul(a, bad), FatalError);
}

TEST(Builder, SoftmaxEmitsExpectedOps)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 16});
    b.output(b.softmax(x));
    int reduces = 0, exps = 0, broadcasts = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        const OpKind kind = g.node(id).kind();
        reduces += isReduce(kind);
        exps += kind == OpKind::Exp;
        broadcasts += kind == OpKind::Broadcast;
    }
    EXPECT_EQ(reduces, 2);   // max + sum
    EXPECT_EQ(exps, 1);
    EXPECT_EQ(broadcasts, 2);
}

TEST(Builder, LayerNormShape)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 32});
    NodeId gamma = b.parameter({32});
    NodeId beta = b.parameter({32});
    NodeId y = b.layerNorm(x, gamma, beta);
    EXPECT_EQ(g.node(y).shape(), (Shape{8, 32}));
}

TEST(Builder, TransposeShape)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2, 3, 4});
    NodeId t = b.transpose(x, {0, 2, 1});
    EXPECT_EQ(g.node(t).shape(), (Shape{2, 4, 3}));
}

TEST(Traversal, HasPathFollowsEdges)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId n1 = b.neg(p);
    NodeId n2 = b.abs(n1);
    NodeId other = b.parameter({4});
    EXPECT_TRUE(hasPath(g, p, n2));
    EXPECT_FALSE(hasPath(g, n2, p));
    EXPECT_FALSE(hasPath(g, other, n2));
    EXPECT_TRUE(hasPath(g, n1, n1));
}

TEST(Traversal, ReachableAndAncestors)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId n1 = b.neg(p);
    NodeId n2 = b.abs(n1);
    const auto down = reachableFrom(g, p);
    EXPECT_EQ(down, (std::vector<NodeId>{n1, n2}));
    const auto up = ancestorsOf(g, n2);
    EXPECT_EQ(up, (std::vector<NodeId>{p, n1}));
}

TEST(Traversal, ConnectedComponentsSplitByScope)
{
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId a = b.neg(p);   // component 1
    NodeId m = b.matmul(b.parameter({4, 4}), b.parameter({4, 4}));
    NodeId c = b.abs(m);   // component 2 (matmul out of scope)
    (void)a;
    (void)c;
    std::vector<bool> scope(g.numNodes(), false);
    for (NodeId id = 0; id < g.numNodes(); ++id)
        scope[id] = isMemoryIntensive(g.node(id).kind()) &&
                    !isSource(g.node(id).kind());
    const auto comps = connectedComponents(g, scope);
    EXPECT_EQ(comps.size(), 2u);
}

TEST(Traversal, MergeCycleDetection)
{
    // a -> matmul -> b : merging {a} and {b} closes a cycle through the
    // external matmul.
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({4, 4});
    NodeId a = b.neg(p);
    NodeId w = b.parameter({4, 4});
    NodeId mm = b.matmul(a, w);
    NodeId c = b.abs(mm);
    EXPECT_TRUE(mergeWouldCreateCycle(g, {a}, {c}));

    // Independent chains are safe to merge.
    NodeId q = b.parameter({4});
    NodeId d = b.neg(q);
    EXPECT_FALSE(mergeWouldCreateCycle(g, {a}, {d}));
}

TEST(DotExport, ContainsNodesAndEdges)
{
    Graph g("demo");
    GraphBuilder b(g);
    NodeId p = b.parameter({4});
    NodeId n = b.tanh(p);
    g.markOutput(n);
    const std::string dot = exportDot(g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("tanh"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(ShapeInference, RejectsWrongRankForBatchMatmul)
{
    NodeAttrs attrs;
    EXPECT_THROW(
        inferShape(OpKind::BatchMatMul, {Shape{2, 3}, Shape{3, 4}}, attrs),
        FatalError);
}

} // namespace
} // namespace astitch
