/**
 * @file
 * Unit tests for the GPU model: occupancy calculator, cost model,
 * kernel simulator, counters and the timeline breakdown.
 */
#include <gtest/gtest.h>

#include "sim/kernel_sim.h"
#include "sim/timeline.h"
#include "support/logging.h"

namespace astitch {
namespace {

TEST(GpuSpec, V100Geometry)
{
    const GpuSpec v100 = GpuSpec::v100();
    EXPECT_EQ(v100.num_sms, 80);
    EXPECT_EQ(v100.maxWarpsPerSm(), 64);
    EXPECT_GT(v100.fp32InstThroughput(), 6e12);
}

TEST(Occupancy, V100Holds160FullBlocksPerWave)
{
    // The paper: "a V100 GPU can concurrently schedule 160 thread-blocks
    // for the same block size [1024]" (Sec 2.3.2).
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 1024, 32, 0);
    EXPECT_EQ(occ.blocks_per_sm, 2);
    EXPECT_EQ(occ.blocksPerWave(v100), 160);
    EXPECT_DOUBLE_EQ(occ.theoretical, 1.0);
}

TEST(Occupancy, TinyBlocksLimitedByBlockSlots)
{
    // 32-thread blocks: at most 32 blocks/SM -> only half the warps.
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 32, 32, 0);
    EXPECT_EQ(occ.blocks_per_sm, 32);
    EXPECT_EQ(occ.warps_per_sm, 32);
    EXPECT_DOUBLE_EQ(occ.theoretical, 0.5);
    EXPECT_EQ(occ.limiter, Occupancy::Limiter::Blocks);
}

TEST(Occupancy, RegistersLimitResidency)
{
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 1024, 64, 0);
    // 64 regs x 1024 threads = 64K regs = the whole SM file: 1 block.
    EXPECT_EQ(occ.blocks_per_sm, 1);
    EXPECT_EQ(occ.limiter, Occupancy::Limiter::Registers);
}

TEST(Occupancy, SharedMemoryLimitsResidency)
{
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 256, 32, 48 * 1024);
    EXPECT_EQ(occ.blocks_per_sm, 2); // 96KB / 48KB
    EXPECT_EQ(occ.limiter, Occupancy::Limiter::SharedMemory);
}

TEST(Occupancy, ImpossibleConfigsReturnZero)
{
    const GpuSpec v100 = GpuSpec::v100();
    EXPECT_EQ(computeOccupancy(v100, 2048, 32, 0).blocks_per_sm, 0);
    EXPECT_EQ(computeOccupancy(v100, 256, 300, 0).blocks_per_sm, 0);
    EXPECT_EQ(computeOccupancy(v100, 256, 32, 100 * 1024).blocks_per_sm,
              0);
}

TEST(Occupancy, WarpGranularAllocation)
{
    // A 33-thread block allocates 2 warps.
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 33, 32, 0);
    EXPECT_EQ(occ.warps_per_sm, occ.blocks_per_sm * 2);
}

TEST(Occupancy, AchievedDropsForSmallGrids)
{
    // Fig. 6-(b): 64 blocks of 1024 threads on 80 SMs -> half-occupied
    // SMs and idle SMs.
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 1024, 32, 0);
    const LaunchDims launch{64, 1024};
    EXPECT_NEAR(achievedOccupancy(v100, launch, occ), 0.5, 1e-9);
    EXPECT_NEAR(smEfficiency(v100, launch, occ), 64.0 / 80.0, 1e-9);
}

TEST(Occupancy, LargeGridsSaturate)
{
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 1024, 32, 0);
    const LaunchDims launch{160000, 1024};
    EXPECT_NEAR(achievedOccupancy(v100, launch, occ), 1.0, 1e-9);
    EXPECT_GT(smEfficiency(v100, launch, occ), 0.999);
}

TEST(Occupancy, TailWaveReducesSmEfficiency)
{
    const GpuSpec v100 = GpuSpec::v100();
    const Occupancy occ = computeOccupancy(v100, 1024, 32, 0);
    // 161 blocks = one full wave + 1 tail block over 80 SMs.
    const LaunchDims launch{161, 1024};
    const double eff = smEfficiency(v100, launch, occ);
    EXPECT_NEAR(eff, (80.0 + 1.0) / 160.0, 1e-9);
}

TEST(CostModel, GlobalBarrierMatchesTable6)
{
    // Table 6: 2.53us @ 20 blocks ... 2.72us @ 160 blocks.
    const CostModel model(GpuSpec::v100());
    EXPECT_NEAR(model.globalBarrierUs(20), 2.53, 0.02);
    EXPECT_NEAR(model.globalBarrierUs(160), 2.72, 0.02);
}

TEST(CostModel, BandwidthDegradesWithLowOccupancy)
{
    const CostModel model(GpuSpec::v100());
    const double good = model.effectiveBandwidth(0.8, 1.0, 256);
    const double poor = model.effectiveBandwidth(0.1, 1.0, 256);
    EXPECT_GT(good, 2.0 * poor);
}

TEST(CostModel, TinyBlocksDegradeBandwidth)
{
    const CostModel model(GpuSpec::v100());
    const double big = model.effectiveBandwidth(0.5, 1.0, 256);
    const double tiny = model.effectiveBandwidth(0.5, 1.0, 32);
    EXPECT_GT(big, 2.0 * tiny);
}

KernelWorkDesc
simpleDesc(double bytes, LaunchDims launch)
{
    KernelWorkDesc desc;
    // Move-assign to dodge GCC 12's -Wrestrict false positive on
    // assigning short string literals (GCC bug 105329).
    desc.name = std::string{"k"};
    desc.launch = launch;
    desc.bytes_read = bytes;
    desc.bytes_written = bytes / 4;
    desc.fp_instructions = bytes / 4;
    return desc;
}

TEST(CostModel, MoreTrafficTakesLonger)
{
    const CostModel model(GpuSpec::v100());
    const auto small = model.priceKernel(
        simpleDesc(1e6, LaunchDims{4096, 256}));
    const auto large = model.priceKernel(
        simpleDesc(64e6, LaunchDims{65536, 256}));
    EXPECT_GT(large.time_us, 4.0 * small.time_us);
}

TEST(CostModel, TransactionsAreSectorSized)
{
    const CostModel model(GpuSpec::v100());
    KernelWorkDesc desc = simpleDesc(3200.0, LaunchDims{1, 256});
    const auto record = model.priceKernel(desc);
    EXPECT_EQ(record.dram_read_transactions, 100);
    EXPECT_EQ(record.dram_write_transactions, 25);
}

TEST(CostModel, PoorCoalescingMultipliesTransactions)
{
    const CostModel model(GpuSpec::v100());
    KernelWorkDesc desc = simpleDesc(3200.0, LaunchDims{1, 256});
    desc.read_coalescing = 0.25;
    const auto record = model.priceKernel(desc);
    EXPECT_EQ(record.dram_read_transactions, 400);
}

TEST(CostModel, GlobalBarrierGridBeyondWaveIsFatal)
{
    // Sec 3.2.3's deadlock constraint is enforced, not advisory.
    const CostModel model(GpuSpec::v100());
    KernelWorkDesc desc = simpleDesc(1e6, LaunchDims{161, 1024});
    desc.num_global_barriers = 1;
    EXPECT_THROW(model.priceKernel(desc), FatalError);
    desc.launch.grid = 160;
    EXPECT_NO_THROW(model.priceKernel(desc));
}

TEST(CostModel, OversizedBlockOrSmemIsFatal)
{
    const CostModel model(GpuSpec::v100());
    KernelWorkDesc desc = simpleDesc(1e6, LaunchDims{16, 2048});
    EXPECT_THROW(model.priceKernel(desc), FatalError);
    desc.launch.block = 256;
    desc.smem_per_block = 64 * 1024;
    EXPECT_THROW(model.priceKernel(desc), FatalError);
}

TEST(CostModel, ExtraLaunchOverheadFlowsThrough)
{
    const CostModel model(GpuSpec::v100());
    KernelWorkDesc desc = simpleDesc(1e6, LaunchDims{512, 256});
    desc.extra_launch_overhead_us = 4.5;
    const auto record = model.priceKernel(desc);
    EXPECT_NEAR(record.launch_overhead_us,
                model.spec().kernel_launch_us + 4.5, 1e-9);
}

TEST(CostModel, MatmulScalesWithFlops)
{
    const CostModel model(GpuSpec::v100());
    const auto small = model.priceMatmul("mm", 1, 512, 512, 512, 4);
    const auto large = model.priceMatmul("mm", 1, 2048, 2048, 2048, 4);
    EXPECT_GT(large.time_us, 30.0 * small.time_us);
    EXPECT_EQ(small.category, KernelCategory::ComputeIntensive);
}

TEST(KernelSim, AccumulatesCounters)
{
    KernelSim sim(GpuSpec::v100());
    sim.launch(simpleDesc(1e6, LaunchDims{512, 256}));
    sim.launchMatmul("mm", 1, 256, 256, 256, 4);
    sim.memcpy("cpy", 1024.0);
    const PerfCounters &counters = sim.counters();
    EXPECT_EQ(counters.kernels.size(), 3u);
    EXPECT_EQ(counters.kernelCount(KernelCategory::MemoryIntensive), 1);
    EXPECT_EQ(counters.kernelCount(KernelCategory::ComputeIntensive), 1);
    EXPECT_EQ(counters.kernelCount(KernelCategory::Memcpy), 1);
    EXPECT_GT(counters.endToEndUs(), 0.0);
}

TEST(KernelSim, TakeCountersResets)
{
    KernelSim sim(GpuSpec::v100());
    sim.launch(simpleDesc(1e6, LaunchDims{512, 256}));
    const PerfCounters taken = sim.takeCounters();
    EXPECT_EQ(taken.kernels.size(), 1u);
    EXPECT_EQ(sim.counters().kernels.size(), 0u);
}

TEST(PerfCounters, TopFractionAverages)
{
    PerfCounters counters;
    KernelRecord big;
    big.category = KernelCategory::MemoryIntensive;
    big.time_us = 90.0;
    big.achieved_occupancy = 0.9;
    big.sm_efficiency = 0.8;
    KernelRecord small;
    small.category = KernelCategory::MemoryIntensive;
    small.time_us = 10.0;
    small.achieved_occupancy = 0.1;
    small.sm_efficiency = 0.1;
    counters.add(big);
    counters.add(small);
    // Top 80% of time is covered by the big kernel alone.
    EXPECT_NEAR(counters.avgOccupancyTop(0.8), 0.9, 1e-9);
    // 100% blends both, weighted by time.
    EXPECT_NEAR(counters.avgOccupancyTop(1.0),
                (0.9 * 90 + 0.1 * 10) / 100.0, 1e-9);
}

TEST(PerfCounters, MemoryKernelsSortedByTime)
{
    PerfCounters counters;
    for (double t : {5.0, 50.0, 20.0}) {
        KernelRecord r;
        r.category = KernelCategory::MemoryIntensive;
        r.time_us = t;
        counters.add(r);
    }
    const auto sorted = counters.memoryKernelsByTime();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_DOUBLE_EQ(sorted[0].time_us, 50.0);
    EXPECT_DOUBLE_EQ(sorted[2].time_us, 5.0);
}

TEST(Timeline, BreakdownSplitsCategories)
{
    PerfCounters counters;
    KernelRecord mem;
    mem.category = KernelCategory::MemoryIntensive;
    mem.time_us = 10.0;
    mem.launch_overhead_us = 4.0;
    KernelRecord compute;
    compute.category = KernelCategory::ComputeIntensive;
    compute.time_us = 30.0;
    compute.launch_overhead_us = 4.0;
    KernelRecord cpy;
    cpy.category = KernelCategory::Memcpy;
    cpy.time_us = 2.0;
    cpy.launch_overhead_us = 3.0;
    counters.add(mem);
    counters.add(compute);
    counters.add(cpy);
    const TimelineBreakdown breakdown = breakdownOf(counters);
    EXPECT_DOUBLE_EQ(breakdown.mem_us, 10.0);
    EXPECT_DOUBLE_EQ(breakdown.compute_us, 30.0);
    EXPECT_DOUBLE_EQ(breakdown.overhead_us, 4 + 4 + 3 + 2.0);
    EXPECT_DOUBLE_EQ(breakdown.totalUs(), counters.endToEndUs());
}

} // namespace
} // namespace astitch
