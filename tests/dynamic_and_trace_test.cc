/**
 * @file
 * Tests for dynamic-shape sessions (shape bucketing) and the trace/CSV
 * exports.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/dynamic_session.h"
#include "sim/trace_export.h"
#include "support/logging.h"
#include "support/strings.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

GraphTemplate
softmaxTemplate()
{
    return [](const std::vector<std::int64_t> &dims) {
        return testing::buildSoftmax(dims.at(0), dims.at(1));
    };
}

BackendFactory
astitchFactory()
{
    return [] { return std::make_unique<AStitchBackend>(); };
}

TEST(DynamicSession, CompilesOncePerShapeSignature)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    session.profile({64, 128});
    session.profile({64, 128});
    EXPECT_EQ(session.numCompiledBuckets(), 1);
    session.profile({128, 128});
    EXPECT_EQ(session.numCompiledBuckets(), 2);
}

TEST(DynamicSession, ShapesChangePlansAndTimes)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    const RunReport small = session.profile({64, 64});
    const RunReport large = session.profile({8192, 1024});
    EXPECT_GT(large.end_to_end_us, small.end_to_end_us);
}

TEST(DynamicSession, PowerOfTwoBucketingBoundsCompilations)
{
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    DynamicSession session(softmaxTemplate(), astitchFactory(),
                           options);
    // 65..128 rows all land in the 128 bucket.
    for (std::int64_t rows : {65, 100, 128, 127})
        session.profile({rows, 256});
    EXPECT_EQ(session.numCompiledBuckets(), 1);
    EXPECT_EQ(session.bucketFor({100, 256}),
              (std::vector<std::int64_t>{128, 256}));
    session.profile({129, 256});
    EXPECT_EQ(session.numCompiledBuckets(), 2);
}

TEST(DynamicSession, ExactModeKeepsExactDims)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    EXPECT_EQ(session.bucketFor({100, 3}),
              (std::vector<std::int64_t>{100, 3}));
}

TEST(DynamicSession, RequiresTemplateAndFactory)
{
    EXPECT_THROW(DynamicSession(nullptr, astitchFactory()), FatalError);
    EXPECT_THROW(DynamicSession(softmaxTemplate(), nullptr), FatalError);
}

TEST(DynamicSession, PowerOfTwoBucketingClampsHugeDims)
{
    // Regression: nextPowerOfTwo used to shift past 2^62 into signed
    // overflow (UB) and loop forever. Dims above the largest int64
    // power of two clamp to it instead.
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    DynamicSession session(softmaxTemplate(), astitchFactory(), options);
    constexpr std::int64_t kMaxPower = std::int64_t{1} << 62;
    EXPECT_EQ(session.bucketFor({kMaxPower + 1, (std::int64_t{1} << 62) +
                                                    (std::int64_t{1}
                                                     << 61)}),
              (std::vector<std::int64_t>{kMaxPower, kMaxPower}));
    EXPECT_EQ(session.bucketFor({kMaxPower}),
              (std::vector<std::int64_t>{kMaxPower}));
    EXPECT_EQ(session.bucketFor({kMaxPower - 1}),
              (std::vector<std::int64_t>{kMaxPower}));
}

TEST(DynamicSession, WarmupCompilesInBackground)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    session.warmup({64, 128});
    session.warmup({64, 128}); // duplicate: no second compilation
    session.warmup({128, 128});
    session.waitForWarmups();
    EXPECT_EQ(session.numCompiledBuckets(), 2);
    // Warmed buckets serve without compiling anything new.
    session.profile({64, 128});
    session.profile({128, 128});
    EXPECT_EQ(session.numCompiledBuckets(), 2);
}

TEST(DynamicSession, WarmupOfCompiledBucketIsNoop)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    session.profile({64, 64});
    session.warmup({64, 64});
    session.waitForWarmups();
    EXPECT_EQ(session.numCompiledBuckets(), 1);
}

TEST(DynamicSession, WarmupErrorSurfacesOnProfile)
{
    GraphTemplate broken = [](const std::vector<std::int64_t> &dims) {
        if (dims.at(0) > 100)
            fatal("template rejects rows > 100");
        return testing::buildSoftmax(dims.at(0), dims.at(1));
    };
    DynamicSession session(std::move(broken), astitchFactory());
    session.warmup({512, 64});
    session.waitForWarmups();
    EXPECT_EQ(session.numCompiledBuckets(), 0);
    EXPECT_THROW(session.profile({512, 64}), FatalError);
    // Healthy buckets are unaffected.
    session.profile({64, 64});
    EXPECT_EQ(session.numCompiledBuckets(), 1);
}

TEST(DynamicSession, DiagnosticsWaitForWarmups)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    session.warmup({64, 128});
    session.warmup({256, 128});
    const DiagnosticEngine merged = session.diagnostics();
    EXPECT_EQ(session.numCompiledBuckets(), 2);
    EXPECT_FALSE(merged.hasErrors());
}

TEST(DynamicSession, ConcurrentProfilesShareBuckets)
{
    DynamicSession session(softmaxTemplate(), astitchFactory());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&session, t] {
            session.profile({64 * (1 + t % 2), 128});
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(session.numCompiledBuckets(), 2);
}

// ---------------------------------------------------------------------
// Shape-parametric certification (AS8xx) through DynamicSession
// ---------------------------------------------------------------------

GraphTemplate
chainTemplate()
{
    return [](const std::vector<std::int64_t> &dims) {
        return testing::buildElementwiseChain(dims.at(0), 4);
    };
}

TEST(DynamicSessionSymbolic, ElementwiseChainCertifiesWholeBucket)
{
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    options.dim_names = {"n"};
    DynamicSession session(chainTemplate(), astitchFactory(), options);
    session.profile({100});

    DynamicSession::SymbolicStats stats = session.symbolicStats();
    ASSERT_EQ(stats.buckets_proven, 1);
    EXPECT_EQ(stats.buckets_fallback, 0);
    EXPECT_EQ(stats.buckets_unsymbolized, 0);

    const std::vector<ShapeCertificate> certs = session.certificates();
    ASSERT_FALSE(certs.empty());
    for (const ShapeCertificate &cert : certs) {
        EXPECT_EQ(cert.verdict, ShapeCertificate::Verdict::Proven);
        ASSERT_EQ(cert.dims.size(), 1u);
        EXPECT_EQ(cert.dims[0].name, "n");
        EXPECT_EQ(cert.dims[0].lo, 65);
        EXPECT_EQ(cert.dims[0].hi, 128);
        EXPECT_TRUE(cert.covers({100}));
        EXPECT_FALSE(cert.covers({64}));
    }

    // Serves inside the certified range ride the certificate instead
    // of re-running the verifier.
    session.profile({65});
    session.profile({128});
    stats = session.symbolicStats();
    EXPECT_EQ(stats.certified_hits, 3);
    EXPECT_EQ(stats.concrete_reverifications, 0);
}

TEST(DynamicSessionSymbolic, DisabledSymbolicVerifyCertifiesNothing)
{
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    options.symbolic_verify = false;
    DynamicSession session(chainTemplate(), astitchFactory(), options);
    session.profile({100});
    session.profile({90});
    const DynamicSession::SymbolicStats stats = session.symbolicStats();
    EXPECT_EQ(stats.buckets_proven, 0);
    EXPECT_EQ(stats.buckets_fallback, 0);
    EXPECT_EQ(stats.buckets_unsymbolized, 0);
    EXPECT_EQ(stats.certified_hits, 0);
    EXPECT_EQ(stats.concrete_reverifications, 0);
    EXPECT_TRUE(session.certificates().empty());
}

TEST(DynamicSessionSymbolic, ExactBucketsArePointRangesWithoutProofs)
{
    // Without rounding, every bucket serves exactly its compile shape;
    // the parametric pass is skipped (nothing beyond the compile-time
    // concrete verification is claimed) and serving the compile shape
    // again triggers no re-verification.
    DynamicSession session(chainTemplate(), astitchFactory());
    session.profile({100});
    session.profile({100});
    const DynamicSession::SymbolicStats stats = session.symbolicStats();
    EXPECT_EQ(stats.buckets_proven, 0);
    EXPECT_EQ(stats.certified_hits, 0);
    EXPECT_EQ(stats.concrete_reverifications, 0);
    EXPECT_TRUE(session.certificates().empty());
}

TEST(DynamicSessionSymbolic, MergedDiagnosticsDedupeWithBucketProvenance)
{
    // Two buckets of one template produce identical plan-level AS831
    // notes; the merge folds them into one record listing both buckets.
    const workloads::DynamicWorkloadSpec wl =
        workloads::dynamicInferenceWorkloads().at(1); // ASR (fallback)
    DynamicSessionOptions options;
    options.bucket_to_power_of_two = true;
    options.dim_names = {wl.dim_name};
    DynamicSession session(wl.build, astitchFactory(), options);
    session.profile({100}); // bucket 128
    session.profile({200}); // bucket 256
    const DiagnosticEngine merged = session.diagnostics();

    int provenance_notes = 0;
    for (const Diagnostic &d : merged.diagnostics()) {
        if (d.code != "AS831")
            continue;
        const std::string text = d.toString();
        if (text.find("bucket 128, bucket 256") != std::string::npos)
            ++provenance_notes;
    }
    EXPECT_GT(provenance_notes, 0)
        << "expected at least one deduplicated AS831 note spanning "
           "both buckets:\n"
        << merged.renderText();
}

// ---------------------------------------------------------------------
// Trace / CSV export
// ---------------------------------------------------------------------

PerfCounters
sampleCounters()
{
    Graph g = testing::buildSoftmax(256, 512);
    Session session(g, std::make_unique<XlaBackend>());
    return session.profile().counters;
}

TEST(TraceExport, ChromeTraceHasOneSlicePairPerKernel)
{
    const PerfCounters counters = sampleCounters();
    const std::string json = toChromeTrace(counters);
    EXPECT_TRUE(strStartsWith(json, "{\"traceEvents\":["));
    int dispatch = 0, device = 0;
    std::size_t pos = 0;
    while ((pos = json.find("\"tid\":0", pos)) != std::string::npos) {
        ++dispatch;
        pos += 7;
    }
    pos = 0;
    while ((pos = json.find("\"tid\":1,\"ts\"", pos)) !=
           std::string::npos) {
        ++device;
        pos += 7;
    }
    EXPECT_EQ(dispatch, static_cast<int>(counters.kernels.size()));
    EXPECT_EQ(device, static_cast<int>(counters.kernels.size()));
}

TEST(TraceExport, DeviceSlicesAreSerialized)
{
    // ts values on tid 1 must be non-decreasing (single stream).
    const std::string json = toChromeTrace(sampleCounters());
    double last_ts = -1.0;
    std::size_t pos = 0;
    while ((pos = json.find("\"tid\":1,\"ts\":", pos)) !=
           std::string::npos) {
        pos += 14;
        const double ts = std::stod(json.substr(pos, 20));
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
    }
    EXPECT_GT(last_ts, 0.0);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerKernel)
{
    const PerfCounters counters = sampleCounters();
    const std::string csv = toCsv(counters);
    const auto lines = strSplit(csv, '\n');
    // header + kernels + trailing empty line
    EXPECT_EQ(lines.size(), counters.kernels.size() + 2);
    EXPECT_TRUE(strStartsWith(lines[0], "name,category,grid,block"));
    EXPECT_NE(lines[1].find("fusion_"), std::string::npos);
}

TEST(TraceExport, CsvColumnsParse)
{
    const std::string csv = toCsv(sampleCounters());
    const auto lines = strSplit(csv, '\n');
    const auto cols = strSplit(lines[1], ',');
    ASSERT_EQ(cols.size(), 11u);
    EXPECT_GT(std::stod(cols[4]), 0.0); // time_us
    EXPECT_GE(std::stoll(cols[8]), 0);  // dram_read_txn
}

TEST(TraceExport, EmptyCountersProduceValidDocuments)
{
    PerfCounters empty;
    EXPECT_EQ(toChromeTrace(empty), "{\"traceEvents\":[]}");
    const auto lines = strSplit(toCsv(empty), '\n');
    EXPECT_EQ(lines.size(), 2u); // header + trailing empty
}

} // namespace
} // namespace astitch
