/**
 * @file
 * Tests of the baseline fusion policies: XLA skips the two hostile
 * patterns, TVM fuses pattern (2) with recomputation (Fig. 5), TensorRT
 * only fuses one-to-one chains, TF stays op-per-kernel.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include "backends/tf/tf_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "compiler/thread_mapping.h"
#include "test_graphs.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

CompiledCluster
compileWith(Backend &&backend, const Graph &g)
{
    auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 1u);
    return backend.compileCluster(g, clusters[0], kV100);
}

double
totalRecompute(const Graph &g, const CompiledCluster &compiled,
               NodeId node)
{
    double total = 0.0;
    for (const KernelPlan &k : compiled.kernels) {
        for (const ScheduledOp &op : k.ops) {
            if (op.node == node)
                total += op.recompute_factor;
        }
    }
    (void)g;
    return total;
}

TEST(TfBackend, OneKernelPerOp)
{
    auto f = testing::buildFig5();
    const auto compiled = compileWith(TfBackend(), f.graph);
    EXPECT_EQ(compiled.kernels.size(),
              findMemoryIntensiveClusters(f.graph)[0].nodes.size());
    for (const KernelPlan &k : compiled.kernels) {
        EXPECT_EQ(k.ops.size(), 1u);
        EXPECT_GT(k.extra_launch_overhead_us, 0.0);
        EXPECT_EQ(k.ops[0].out_space, BufferSpace::Output);
    }
}

TEST(XlaBackend, ElementwiseChainFusesToOneKernel)
{
    Graph g = testing::buildElementwiseChain(1024, 6);
    const auto compiled = compileWith(XlaBackend(), g);
    EXPECT_EQ(compiled.kernels.size(), 1u);
}

TEST(XlaBackend, SkipsHeavyBroadcastFusion)
{
    // Pattern (2): power is its own kernel root under XLA, so its
    // recompute factor stays 1 (no Fig. 5 redundancy) but an extra
    // kernel appears.
    auto f = testing::buildFig5(2, 128);
    const auto compiled = compileWith(XlaBackend(), f.graph);
    EXPECT_EQ(compiled.kernels.size(), 2u);
    EXPECT_DOUBLE_EQ(totalRecompute(f.graph, compiled, f.power), 1.0);
}

TEST(TvmBackend, FusesHeavyBroadcastWithRedundancy)
{
    // Fig. 5: TVM folds power into the add kernel, recomputing it per
    // consumer element: factor == broadcast fan-out (128).
    auto f = testing::buildFig5(2, 128);
    const auto compiled = compileWith(TvmBackend(), f.graph);
    EXPECT_EQ(compiled.kernels.size(), 1u);
    EXPECT_DOUBLE_EQ(totalRecompute(f.graph, compiled, f.power), 128.0);
}

TEST(TvmBackend, RedundantWorkShowsInInstructionCount)
{
    auto f = testing::buildFig5(2, 128);
    const auto tvm = compileWith(TvmBackend(), f.graph);
    const auto xla = compileWith(XlaBackend(), f.graph);
    double tvm_insts = 0.0, xla_insts = 0.0;
    for (const auto &k : tvm.kernels)
        tvm_insts += workDescFor(f.graph, k).fp_instructions;
    for (const auto &k : xla.kernels)
        xla_insts += workDescFor(f.graph, k).fp_instructions;
    EXPECT_GT(tvm_insts, 2.0 * xla_insts);
}

TEST(BothBackends, ReduceIsAlwaysAKernelRoot)
{
    Graph g = testing::buildSoftmax(8, 64);
    for (auto compiled : {compileWith(XlaBackend(), g),
                          compileWith(TvmBackend(), g)}) {
        for (const KernelPlan &k : compiled.kernels) {
            for (const ScheduledOp &op : k.ops) {
                if (isReduce(g.node(op.node).kind())) {
                    EXPECT_EQ(op.out_space, BufferSpace::Output)
                        << "reduce must be a fusion root";
                }
            }
        }
    }
}

TEST(XlaBackend, SoftmaxSplitsAtReduces)
{
    // Softmax = reduce_max root + reduce_sum root + final div root.
    Graph g = testing::buildSoftmax(8, 64);
    const auto compiled = compileWith(XlaBackend(), g);
    EXPECT_EQ(compiled.kernels.size(), 3u);
}

TEST(XlaBackend, MultiConsumerProducerIsDuplicated)
{
    // Operator-level redundancy (Fig. 4's operator A): a producer feeding
    // two kernels is inlined into both.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 64});
    NodeId a = b.mul(x, x); // shared producer
    NodeId r1 = b.reduceSum(a, {1});
    NodeId r2 = b.reduceMax(a, {1});
    g.markOutput(r1);
    g.markOutput(r2);
    const auto compiled = compileWith(XlaBackend(), g);
    EXPECT_EQ(compiled.kernels.size(), 2u);
    int kernels_containing_a = 0;
    for (const KernelPlan &k : compiled.kernels)
        kernels_containing_a += k.containsNode(a);
    EXPECT_EQ(kernels_containing_a, 2);
}

TEST(TrtBackend, NoDuplicationCutsAtMultiConsumer)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64});
    NodeId a = b.mul(x, x);
    NodeId y1 = b.neg(a);
    NodeId y2 = b.abs(a);
    g.markOutput(y1);
    g.markOutput(y2);
    const auto compiled = compileWith(TrtBackend(), g);
    // a materializes once; y1/y2 are separate kernels: 3 total.
    EXPECT_EQ(compiled.kernels.size(), 3u);
    EXPECT_DOUBLE_EQ(totalRecompute(g, compiled, a), 1.0);
}

TEST(NaiveMappings, ReproduceFig6Pathologies)
{
    // <750000,32>: one tiny block per row.
    const LaunchDims small_block =
        rowReduceMappingNaive(kV100, 750000, 32);
    EXPECT_EQ(small_block.grid, 750000);
    EXPECT_EQ(small_block.block, 32);

    // <64,30000>: 64 big blocks, far below the 160-block wave.
    const LaunchDims small_count =
        rowReduceMappingNaive(kV100, 64, 30000);
    EXPECT_EQ(small_count.grid, 64);
    EXPECT_EQ(small_count.block, 1024);
}

TEST(AnalyzeReduce, RowVsColumn)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({100, 32});
    NodeId row = b.reduceSum(x, {1});
    NodeId col = b.reduceSum(x, {0});
    const ReduceInfo ri = analyzeReduce(g, row);
    EXPECT_TRUE(ri.is_row_reduce);
    EXPECT_EQ(ri.rows, 100);
    EXPECT_EQ(ri.cols, 32);
    const ReduceInfo ci = analyzeReduce(g, col);
    EXPECT_FALSE(ci.is_row_reduce);
    EXPECT_EQ(ci.cols, 100);
}

TEST(AnalyzeReduce, FullReduceIsRowReduce)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId r = b.reduceSum(x, {0, 1});
    const ReduceInfo info = analyzeReduce(g, r);
    EXPECT_TRUE(info.is_row_reduce);
    EXPECT_EQ(info.cols, 64);
    EXPECT_EQ(info.rows, 1);
}

TEST(AnsorMode, ImprovesIrregularReduceMapping)
{
    // Ansor's tuned mapping must beat the naive 32-thread blocks on the
    // DIEN shape.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({750000, 32});
    NodeId r = b.reduceSum(x, {1});
    g.markOutput(r);
    auto clusters = findMemoryIntensiveClusters(g);
    TvmBackend ansor(/*ansor_tuning=*/true);
    const auto compiled = ansor.compileCluster(g, clusters[0], kV100);
    ASSERT_EQ(compiled.kernels.size(), 1u);
    EXPECT_GE(compiled.kernels[0].launch.block, 128);
}

TEST(ColumnReduce, EmitsAtomicsAndMemset)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64, 128});
    NodeId r = b.reduceSum(x, {0});
    g.markOutput(r);
    const auto compiled = compileWith(XlaBackend(), g);
    ASSERT_EQ(compiled.kernels.size(), 1u);
    EXPECT_GT(compiled.kernels[0].atomic_operations, 0.0);
    EXPECT_GE(compiled.num_memcpy, 1);
}

TEST(WorkDesc, CountsInputAndOutputTraffic)
{
    Graph g = testing::buildElementwiseChain(1024, 2);
    const auto compiled = compileWith(XlaBackend(), g);
    ASSERT_EQ(compiled.kernels.size(), 1u);
    const KernelWorkDesc desc =
        workDescFor(g, compiled.kernels[0]);
    // Reads the 1024-float parameter (constants are scalars), writes the
    // 1024-float output.
    EXPECT_GE(desc.bytes_read, 1024 * 4.0);
    EXPECT_GE(desc.bytes_written, 1024 * 4.0);
    EXPECT_LT(desc.bytes_written, 2 * 1024 * 4.0);
}

} // namespace
} // namespace astitch
