/**
 * @file
 * Tests of the runtime Session: compilation caching, unit scheduling,
 * counter plumbing and functional execution through compiled plans.
 */
#include <gtest/gtest.h>

#include "backends/tf/tf_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

TEST(Session, CompileIsCached)
{
    Graph g = testing::buildElementwiseChain(256, 3);
    Session session(g, std::make_unique<XlaBackend>());
    const double first = session.compile();
    const double second = session.compile();
    EXPECT_EQ(first, second); // cached, not re-measured
    EXPECT_GE(first, 0.0);
}

TEST(Session, ProfileProducesCountersWithoutValues)
{
    Graph g = testing::buildSoftmax(128, 256);
    Session session(g, std::make_unique<XlaBackend>());
    const RunReport report = session.profile();
    EXPECT_TRUE(report.outputs.empty());
    EXPECT_GT(report.memKernelCount(), 0);
    EXPECT_GT(report.end_to_end_us, 0.0);
    EXPECT_EQ(report.backend_name, "xla");
}

TEST(Session, RunComputesOutputsMatchingEvaluator)
{
    auto f = testing::buildFig7(4, 8);
    TensorMap feeds{
        {f.param1, Tensor::iota({4, 8})},
        {f.param2, Tensor(Shape{4, 1}, {1, 2, 3, 4})},
    };
    const auto expected = Evaluator(f.graph).run(feeds);

    for (int backend = 0; backend < 3; ++backend) {
        std::unique_ptr<Backend> b;
        if (backend == 0)
            b = std::make_unique<TfBackend>();
        else if (backend == 1)
            b = std::make_unique<XlaBackend>();
        else
            b = std::make_unique<AStitchBackend>();
        Session session(f.graph, std::move(b));
        const RunReport report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(report.outputs[i].allClose(expected[i]))
                << "backend " << report.backend_name << " output " << i;
        }
    }
}

TEST(Session, ComputeIntensiveOpsPricedAsLibraryKernels)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({16, 16});
    NodeId w = b.parameter({16, 16});
    NodeId y = b.tanh(b.matmul(x, w));
    g.markOutput(y);
    Session session(g, std::make_unique<XlaBackend>());
    const RunReport report = session.profile();
    EXPECT_EQ(report.counters.kernelCount(
                  KernelCategory::ComputeIntensive),
              1);
    EXPECT_EQ(report.memKernelCount(), 1);
}

TEST(Session, InterleavedClustersAndMatmulsScheduleCorrectly)
{
    // mem -> matmul -> mem -> matmul -> mem, with values checked.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 4});
    NodeId m1 = b.mul(x, b.constantScalar(0.5f));
    NodeId w = b.parameter({4, 4});
    NodeId mm1 = b.matmul(m1, w);
    NodeId m2 = b.tanh(mm1);
    NodeId mm2 = b.matmul(m2, w);
    NodeId m3 = b.sigmoid(mm2);
    g.markOutput(m3);

    TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto report = session.run(feeds);
    ASSERT_EQ(report.outputs.size(), 1u);
    EXPECT_TRUE(report.outputs[0].allClose(expected[0]));
}

TEST(Session, TfBackendPaysFrameworkOverhead)
{
    Graph g = testing::buildElementwiseChain(1024, 5);
    Session tf_session(g, std::make_unique<TfBackend>());
    Session xla_session(g, std::make_unique<XlaBackend>());
    const auto tf = tf_session.profile();
    const auto xla = xla_session.profile();
    EXPECT_GT(tf.memKernelCount(), xla.memKernelCount());
    EXPECT_GT(tf.breakdown.overhead_us, xla.breakdown.overhead_us);
    EXPECT_GT(tf.end_to_end_us, xla.end_to_end_us);
}

TEST(Session, AStitchRemoteStitchingMergesIndependentClusters)
{
    // Two independent softmaxes: XLA keeps two clusters, AStitch merges
    // them into one stitch op (one kernel).
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64, 64});
    NodeId y = b.parameter({64, 64});
    b.output(b.softmax(x));
    b.output(b.softmax(y));

    Session xla(g, std::make_unique<XlaBackend>());
    Session astitch(g, std::make_unique<AStitchBackend>());
    EXPECT_EQ(xla.profile().num_clusters, 2);
    EXPECT_EQ(astitch.profile().num_clusters, 1);
    EXPECT_EQ(astitch.profile().memKernelCount(), 1);
}

TEST(Session, ReportSummaryMentionsBackend)
{
    Graph g = testing::buildElementwiseChain(64, 2);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto report = session.profile();
    EXPECT_NE(report.summary().find("astitch"), std::string::npos);
}

} // namespace
} // namespace astitch
