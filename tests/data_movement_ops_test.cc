/**
 * @file
 * Tests for the Slice / Pad / Gather data-movement operators and the
 * Conv3x3 implicit-GEMM library op, across reference kernels, shape
 * inference, evaluation and compilation.
 */
#include <gtest/gtest.h>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "tensor/reference_ops.h"
#include "workloads/common.h"
#include "workloads/dien.h"

namespace astitch {
namespace {

// ---------------------------------------------------------------------
// Reference kernels
// ---------------------------------------------------------------------

TEST(RefSlice, TakesRowRange)
{
    Tensor x = Tensor::iota({4, 3});
    Tensor s = ref::slice(x, 1, 2);
    EXPECT_EQ(s.shape(), (Shape{2, 3}));
    EXPECT_FLOAT_EQ(s.at(0), 3.0f);
    EXPECT_FLOAT_EQ(s.at(5), 8.0f);
}

TEST(RefSlice, RejectsOutOfRange)
{
    Tensor x = Tensor::iota({4, 3});
    EXPECT_THROW(ref::slice(x, 3, 2), FatalError);
    EXPECT_THROW(ref::slice(x, -1, 2), FatalError);
    EXPECT_THROW(ref::slice(x, 0, 0), FatalError);
}

TEST(RefPad, ZeroFillsOutside)
{
    Tensor x = Tensor::full({2, 2}, 7.0f);
    Tensor p = ref::pad(x, Shape{3, 4});
    EXPECT_EQ(p.shape(), (Shape{3, 4}));
    EXPECT_FLOAT_EQ(p.at({1, 1}), 7.0f);
    EXPECT_FLOAT_EQ(p.at({2, 3}), 0.0f);
    EXPECT_FLOAT_EQ(p.at({0, 2}), 0.0f);
}

TEST(RefGather, LooksUpRows)
{
    Tensor table = Tensor::iota({4, 2}); // rows: [0,1],[2,3],[4,5],[6,7]
    Tensor indices(Shape{3}, {2.0f, 0.0f, 2.0f});
    Tensor g = ref::gather(table, indices);
    EXPECT_EQ(g.shape(), (Shape{3, 2}));
    EXPECT_FLOAT_EQ(g.at({0, 0}), 4.0f);
    EXPECT_FLOAT_EQ(g.at({1, 1}), 1.0f);
    EXPECT_FLOAT_EQ(g.at({2, 1}), 5.0f);
}

TEST(RefGather, RejectsBadIndices)
{
    Tensor table = Tensor::iota({4, 2});
    Tensor bad(Shape{1}, {4.0f});
    EXPECT_THROW(ref::gather(table, bad), FatalError);
}

// ---------------------------------------------------------------------
// Builder + shape inference + classification
// ---------------------------------------------------------------------

TEST(Builder, SlicePadGatherShapes)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 4});
    EXPECT_EQ(g.node(b.slice(x, 2, 3)).shape(), (Shape{3, 4}));
    EXPECT_EQ(g.node(b.pad(x, {10, 6})).shape(), (Shape{10, 6}));
    NodeId idx = b.parameter({5});
    EXPECT_EQ(g.node(b.gather(x, idx)).shape(), (Shape{5, 4}));
}

TEST(Builder, SlicePadGatherRejectBadShapes)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 4});
    EXPECT_THROW(b.slice(x, 7, 2), FatalError);
    EXPECT_THROW(b.pad(x, {4, 4}), FatalError);     // shrinking
    EXPECT_THROW(b.pad(x, {8, 4, 1}), FatalError);  // rank change
    NodeId idx2d = b.parameter({5, 1});
    EXPECT_THROW(b.gather(x, idx2d), FatalError);
}

TEST(Builder, Conv3x3Shape)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({100, 16});
    NodeId w = b.parameter({144, 32});
    EXPECT_EQ(g.node(b.conv3x3(x, w)).shape(), (Shape{100, 32}));
    NodeId bad_w = b.parameter({16, 32});
    EXPECT_THROW(b.conv3x3(x, bad_w), FatalError);
}

TEST(Classification, NewOpsAreMemoryOrCompute)
{
    EXPECT_TRUE(isMemoryIntensive(OpKind::Slice));
    EXPECT_TRUE(isMemoryIntensive(OpKind::Pad));
    EXPECT_TRUE(isMemoryIntensive(OpKind::Gather));
    EXPECT_TRUE(isLightElementwise(OpKind::Gather));
    EXPECT_TRUE(isComputeIntensive(OpKind::Conv3x3));
    EXPECT_FALSE(isMemoryIntensive(OpKind::Conv3x3));
    // Gather's indirect addressing costs more than plain movement.
    EXPECT_GT(opInstructionsPerElement(OpKind::Gather),
              opInstructionsPerElement(OpKind::Slice));
}

// ---------------------------------------------------------------------
// End-to-end through the compilers
// ---------------------------------------------------------------------

TEST(EndToEnd, EmbeddingGatherPipelineMatchesReference)
{
    // gather -> scale -> row-softmax -> slice: a miniature DIEN-style
    // embedding pipeline.
    Graph g("embedding");
    GraphBuilder b(g);
    NodeId table = b.parameter({16, 8}, "table");
    NodeId ids = b.constant(
        Tensor(Shape{6}, {0, 3, 3, 15, 7, 1}), "ids");
    NodeId e = b.gather(table, ids);
    NodeId scaled = b.mul(e, b.constantScalar(0.5f));
    NodeId probs = b.softmax(scaled);
    NodeId head = b.slice(probs, 0, 4);
    b.output(b.pad(head, {6, 8}));

    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);
    for (int which = 0; which < 2; ++which) {
        std::unique_ptr<Backend> backend;
        if (which == 0)
            backend = std::make_unique<XlaBackend>();
        else
            backend = std::make_unique<AStitchBackend>();
        Session session(g, std::move(backend));
        const auto report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), 1u);
        EXPECT_TRUE(report.outputs[0].allClose(expected[0], 1e-5, 1e-6))
            << report.backend_name;
    }
}

TEST(EndToEnd, GatherPenalizesCoalescing)
{
    Graph g;
    GraphBuilder b(g);
    NodeId table = b.parameter({1024, 64});
    Tensor ids(Shape{4096}, DType::I32);
    for (std::int64_t i = 0; i < 4096; ++i)
        ids.set(i, static_cast<float>((i * 37) % 1024));
    NodeId e = b.gather(table, b.constant(std::move(ids)));
    b.output(b.mul(e, b.constantScalar(2.0f)));

    Session session(g, std::make_unique<AStitchBackend>());
    const auto &compiled = session.compiled();
    ASSERT_EQ(compiled.size(), 1u);
    EXPECT_LT(compiled[0].kernels[0].read_coalescing, 1.0);
}

TEST(EndToEnd, Conv3x3PricedAsLibraryKernel)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64, 8});
    NodeId w = b.parameter({72, 8});
    b.output(b.tanh(b.conv3x3(x, w)));
    Session session(g, std::make_unique<XlaBackend>());
    const auto report = session.profile();
    EXPECT_EQ(report.counters.kernelCount(
                  KernelCategory::ComputeIntensive),
              1);
}

TEST(EndToEnd, Conv3x3EvaluatesLikeExplicitIm2col)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({5, 3});
    NodeId w = b.parameter({27, 4});
    NodeId y = b.conv3x3(x, w);
    b.output(y);
    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto out = Evaluator(g).run(feeds);

    // Manual im2col: replicate each row 9x, then matmul.
    const Tensor &xv = feeds.at(x);
    Tensor patches(Shape{5, 27});
    for (int r = 0; r < 5; ++r) {
        for (int p = 0; p < 9; ++p) {
            for (int c = 0; c < 3; ++c) {
                patches.set(r * 27 + p * 3 + c, xv.at(r * 3 + c));
            }
        }
    }
    const Tensor expected = ref::matmul(patches, feeds.at(w));
    EXPECT_TRUE(out[0].allClose(expected));
}

TEST(EndToEnd, DienGathersFromEmbeddingTable)
{
    using namespace workloads;
    Graph g = buildDien(DienConfig::tiny());
    int gathers = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id)
        gathers += g.node(id).kind() == OpKind::Gather;
    EXPECT_EQ(gathers, 1);
}

} // namespace
} // namespace astitch
