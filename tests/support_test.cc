/**
 * @file
 * Unit tests for the support library: logging, strings, rng, and the
 * thread pool behind the parallel JIT pipeline.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace astitch {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant ", "violated"), PanicError);
}

TEST(Logging, FatalMessageContainsArgs)
{
    try {
        fatal("shape ", 12, " is bad");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "shape 12 is bad");
    }
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, FatalErrorIsNotPanicError)
{
    // The two error classes must stay distinguishable: fatal is a user
    // error, panic is a library bug.
    try {
        fatal("user error");
    } catch (const PanicError &) {
        FAIL() << "fatal threw PanicError";
    } catch (const FatalError &) {
        SUCCEED();
    }
}

TEST(Strings, StrCatConcatenatesMixedTypes)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(Strings, StrJoinWithSeparator)
{
    std::vector<int> v{1, 2, 3};
    EXPECT_EQ(strJoin(v, ","), "1,2,3");
}

TEST(Strings, StrJoinEmptyRange)
{
    std::vector<int> v;
    EXPECT_EQ(strJoin(v, ","), "");
}

TEST(Strings, StrSplitBasic)
{
    auto parts = strSplit("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(strStartsWith("stitch_bert", "stitch_"));
    EXPECT_FALSE(strStartsWith("xla_bert", "stitch_"));
    EXPECT_FALSE(strStartsWith("st", "stitch_"));
}

TEST(Strings, FixedAndPad)
{
    EXPECT_EQ(strFixed(3.14159, 2), "3.14");
    EXPECT_EQ(strPad("ab", 5), "   ab");
    EXPECT_EQ(strPad("abcdef", 3), "abcdef");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(17);
    EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

// ---------------------------------------------------------------------
// ThreadPool / parallelFor
// ---------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        std::vector<std::atomic<int>> counts(257);
        parallelFor(threads, counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
        for (const auto &c : counts)
            EXPECT_EQ(c.load(), 1);
    }
}

TEST(ThreadPool, ParallelForZeroAndOneIndices)
{
    int calls = 0;
    parallelFor(8, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(8, 1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PoolIsReusableAcrossParallelFors)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::atomic<int> total{0};
    for (int round = 0; round < 3; ++round)
        parallelFor(pool, 100, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 300);
}

TEST(ThreadPool, LowestIndexExceptionWinsDeterministically)
{
    for (int threads : {1, 2, 8}) {
        try {
            parallelFor(threads, 64, [](std::size_t i) {
                if (i == 7 || i == 40)
                    fatal("boom at ", i);
            });
            FAIL() << "parallelFor did not rethrow";
        } catch (const FatalError &e) {
            EXPECT_STREQ(e.what(), "boom at 7");
        }
    }
}

TEST(ThreadPool, ExceptionStillRunsRemainingIndices)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(4, 32,
                             [&](std::size_t i) {
                                 ran.fetch_add(1);
                                 if (i == 0)
                                     panic("first fails");
                             }),
                 PanicError);
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SubmitRunsDetachedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, ResolveCompileThreadsHonorsRequestAndFloor)
{
    EXPECT_EQ(resolveCompileThreads(3), 3);
    EXPECT_EQ(resolveCompileThreads(1), 1);
    EXPECT_GE(resolveCompileThreads(0), 1);
    EXPECT_GE(resolveCompileThreads(-5), 1);
}

TEST(ThreadPool, ResolveCompileThreadsReadsEnv)
{
    ::setenv("ASTITCH_COMPILE_THREADS", "6", 1);
    EXPECT_EQ(resolveCompileThreads(0), 6);
    EXPECT_EQ(resolveCompileThreads(2), 2); // explicit beats env
    ::setenv("ASTITCH_COMPILE_THREADS", "bogus", 1);
    EXPECT_GE(resolveCompileThreads(0), 1);
    ::unsetenv("ASTITCH_COMPILE_THREADS");
}

} // namespace
} // namespace astitch
