/**
 * @file
 * Tests of the analysis subsystem: the diagnostics engine (registry,
 * severities, text/JSON/SARIF renderers), each sanitizer check family on
 * hand-built plans, the unified analyzer, and the Session integration
 * (clean seed workloads produce zero findings).
 */
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/plan_consistency.h"
#include "analysis/sanitizer.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "sim/occupancy.h"
#include "support/logging.h"
#include "support/strings.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

std::vector<std::string>
codesOf(const DiagnosticEngine &engine)
{
    std::vector<std::string> codes;
    for (const Diagnostic &d : engine.diagnostics())
        codes.push_back(d.code);
    return codes;
}

// ---------------------------------------------------------------------
// Diagnostics engine
// ---------------------------------------------------------------------

TEST(Diagnostics, RegistryIsSortedAndLookupWorks)
{
    const auto &codes = diagnosticCodes();
    ASSERT_FALSE(codes.empty());
    for (std::size_t i = 1; i < codes.size(); ++i)
        EXPECT_LT(std::string(codes[i - 1].code), codes[i].code);

    const DiagnosticCode *info = findDiagnosticCode("AS101");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->severity, Severity::Error);
    EXPECT_STREQ(info->title, "shared-race-missing-barrier");
    EXPECT_EQ(findDiagnosticCode("AS999"), nullptr);
}

TEST(Diagnostics, ReportUsesRegisteredSeverity)
{
    DiagnosticEngine engine;
    engine.report("AS201", "k", "deadlock");
    engine.report("AS501", "k", "divergent trips");
    EXPECT_EQ(engine.size(), 2u);
    EXPECT_EQ(engine.count(Severity::Error), 1);
    EXPECT_EQ(engine.count(Severity::Warning), 1);
    EXPECT_TRUE(engine.hasErrors());
}

TEST(Diagnostics, UnregisteredCodePanics)
{
    DiagnosticEngine engine;
    EXPECT_THROW(engine.report("XX123", "k", "bogus"), PanicError);
}

TEST(Diagnostics, PrefixFilterAndMerge)
{
    DiagnosticEngine a, b;
    a.report("AS101", "k1", "race");
    b.report("AS005", "k2", "bad launch");
    b.report("AS102", "k2", "war");
    a.merge(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.withCodePrefix("AS1").size(), 2u);
    EXPECT_EQ(a.withCodePrefix("AS0").size(), 1u);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(Diagnostics, TextRenderSortsErrorsFirst)
{
    DiagnosticEngine engine;
    engine.report("AS501", "k", "lint");
    engine.report("AS101", "k", "race");
    const std::string text = engine.renderText();
    const auto race = text.find("[AS101]");
    const auto lint = text.find("[AS501]");
    ASSERT_NE(race, std::string::npos);
    ASSERT_NE(lint, std::string::npos);
    EXPECT_LT(race, lint); // errors before warnings
}

TEST(Diagnostics, JsonRenderCarriesFindingsAndSummary)
{
    DiagnosticEngine engine;
    engine.report("AS101", "kern_a", "store \"x\" unsynchronized", 7);
    engine.report("AS501", "kern_b", "trips diverge");
    const std::string json = engine.renderJson();
    EXPECT_NE(json.find("\"code\":\"AS101\""), std::string::npos);
    EXPECT_NE(json.find("\"kernel\":\"kern_a\""), std::string::npos);
    EXPECT_NE(json.find("\"node\":7"), std::string::npos);
    EXPECT_NE(json.find("\\\"x\\\""), std::string::npos); // escaping
    EXPECT_NE(json.find("\"summary\":{\"errors\":1,\"warnings\":1,"
                        "\"notes\":0}"),
              std::string::npos);
}

TEST(Diagnostics, SarifRenderHasRulesAndResults)
{
    DiagnosticEngine engine;
    engine.report("AS201", "kern", "grid over capacity");
    const std::string sarif = engine.renderSarif();
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    // Every registered code appears as a rule.
    for (const DiagnosticCode &info : diagnosticCodes()) {
        EXPECT_NE(sarif.find(strCat("\"id\":\"", info.code, "\"")),
                  std::string::npos)
            << info.code;
    }
    EXPECT_NE(sarif.find("\"ruleId\":\"AS201\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"kern\",\"kind\":\"kernel\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Sanitizer families on hand-built plans
// ---------------------------------------------------------------------

/** x -> tanh -> sigmoid chain whose middle value lives in shared
 * memory. */
struct SharedChainFixture
{
    Graph graph;
    Cluster cluster;
    CompiledCluster compiled;
    NodeId x, t, r;

    SharedChainFixture()
    {
        GraphBuilder b(graph);
        x = b.parameter({128});
        t = b.tanh(x);
        r = b.sigmoid(t);
        graph.markOutput(r);
        cluster = findMemoryIntensiveClusters(graph)[0];

        KernelPlan plan;
        plan.name = "chain";
        plan.launch = LaunchDims{1, 128};
        plan.smem_per_block = 512;
        plan.inputs.push_back(KernelInput{x, 1.0});
        plan.ops.push_back(ScheduledOp{t, 1.0, BufferSpace::Shared, {}});
        plan.ops.push_back(ScheduledOp{r, 1.0, BufferSpace::Output, {}});
        plan.outputs.push_back(r);
        plan.shared_slots.push_back(SharedSlot{t, 0, 512});
        plan.barriers.push_back(
            BarrierPoint{0, BarrierScope::Block, 1});
        compiled.kernels.push_back(std::move(plan));
    }
};

TEST(Sanitizer, CleanSharedChainHasNoFindings)
{
    SharedChainFixture f;
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_TRUE(engine.empty()) << engine.renderText();
}

TEST(Sanitizer, MissingBarrierIsAS101)
{
    SharedChainFixture f;
    f.compiled.kernels[0].barriers.clear();
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS101"});
}

TEST(Sanitizer, MisplacedBarrierIsStillAS101)
{
    SharedChainFixture f;
    // A barrier after the consumer does not protect the edge.
    f.compiled.kernels[0].barriers[0].after_op = 1;
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS101"});
}

TEST(Sanitizer, GlobalEdgeWithoutDeviceBarrierIsAS202)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.ops[0].out_space = BufferSpace::Global;
    plan.shared_slots.clear();
    // The Block barrier covers the edge race-wise, but block-scope sync
    // cannot order global-memory communication across blocks.
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS202"});
}

TEST(Sanitizer, DeviceBarrierOverCapacityIsAS201)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.ops[0].out_space = BufferSpace::Global;
    plan.shared_slots.clear();
    plan.barriers[0].scope = BarrierScope::Device;
    plan.launch.grid = 1 << 20; // far beyond any wave
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS201"});

    // At exactly the co-resident capacity the barrier is legal.
    plan.launch.grid = static_cast<int>(coResidentBlockCapacity(
        kV100, plan.launch.block, plan.regs_per_thread,
        plan.smem_per_block));
    engine.clear();
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_TRUE(engine.empty()) << engine.renderText();
}

TEST(Sanitizer, UnlaunchableDeviceBarrierIsAS203)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.barriers[0].scope = BarrierScope::Device;
    plan.smem_per_block = kV100.smem_per_block_bytes + 1;
    plan.shared_slots.clear();
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS203"});
}

TEST(Sanitizer, CrossBlockPartitionIsAS301)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.ops[0].partition = OpPartition{LaunchDims{4, 128}, 1, 1};
    plan.ops[1].partition = OpPartition{LaunchDims{8, 64}, 1, 1};
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS301"});

    // Matching partitions are clean.
    plan.ops[1].partition = plan.ops[0].partition;
    engine.clear();
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_TRUE(engine.empty()) << engine.renderText();
}

TEST(Sanitizer, SlotEscapingArenaIsAS402)
{
    SharedChainFixture f;
    f.compiled.kernels[0].shared_slots[0].size_bytes = 1024;
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS402"});
}

TEST(Sanitizer, DivergentTripCountIsAS501Warning)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.ops[0].partition = OpPartition{LaunchDims{4, 128}, 1, 4};
    plan.ops[1].partition = plan.ops[0].partition;
    plan.barriers[0].trip_count = 1; // loop iterates 4 times
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS501"});
    EXPECT_FALSE(engine.hasErrors()); // lint only
    EXPECT_EQ(engine.count(Severity::Warning), 1);
}

/** Two disjoint-lifetime shared values aliased onto one slot. */
struct AliasedSlotsFixture
{
    Graph graph;
    CompiledCluster compiled;
    NodeId x, a, b, c, d;

    AliasedSlotsFixture()
    {
        GraphBuilder gb(graph);
        x = gb.parameter({128});
        a = gb.tanh(x);    // shared, live [0, 1]
        b = gb.sigmoid(a); // consumer of a
        c = gb.exp(b);     // shared, live [2, 3]
        d = gb.log(c);     // consumer of c, output
        graph.markOutput(d);

        KernelPlan plan;
        plan.name = "aliased";
        plan.launch = LaunchDims{1, 128};
        plan.smem_per_block = 512;
        plan.inputs.push_back(KernelInput{x, 1.0});
        plan.ops.push_back(ScheduledOp{a, 1.0, BufferSpace::Shared, {}});
        plan.ops.push_back(ScheduledOp{b, 1.0, BufferSpace::Register, {}});
        plan.ops.push_back(ScheduledOp{c, 1.0, BufferSpace::Shared, {}});
        plan.ops.push_back(ScheduledOp{d, 1.0, BufferSpace::Output, {}});
        plan.outputs.push_back(d);
        // Both values share bytes [0, 512): legal, lifetimes disjoint.
        plan.shared_slots.push_back(SharedSlot{a, 0, 512});
        plan.shared_slots.push_back(SharedSlot{c, 0, 512});
        // Boundary barrier of edge a->b, the write-after-read separator
        // between a's last reader and c's store, and the boundary
        // barrier of edge c->d.
        plan.barriers.push_back(BarrierPoint{0, BarrierScope::Block, 1});
        plan.barriers.push_back(BarrierPoint{1, BarrierScope::Block, 1});
        plan.barriers.push_back(BarrierPoint{2, BarrierScope::Block, 1});
        compiled.kernels.push_back(std::move(plan));
    }
};

TEST(Sanitizer, LegalSlotReuseIsClean)
{
    AliasedSlotsFixture f;
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_TRUE(engine.empty()) << engine.renderText();
}

TEST(Sanitizer, ReuseWithoutSeparatorIsAS102)
{
    AliasedSlotsFixture f;
    // Drop the WAR separator between a's last reader and c's store.
    auto &barriers = f.compiled.kernels[0].barriers;
    barriers.erase(barriers.begin() + 1);
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    EXPECT_EQ(codesOf(engine), std::vector<std::string>{"AS102"});
}

TEST(Sanitizer, ConcurrentlyLiveOverlapIsAS401)
{
    AliasedSlotsFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    // Replace the final op with one consuming both a and c: their
    // lifetimes now overlap while their slots share bytes.
    GraphBuilder gb(f.graph);
    const NodeId d2 = gb.add(f.a, f.c);
    plan.ops[3] = ScheduledOp{d2, 1.0, BufferSpace::Output, {}};
    plan.outputs.assign(1, d2);
    DiagnosticEngine engine;
    sanitizeCompiledCluster(f.graph, f.compiled, kV100, engine);
    const auto codes = codesOf(engine);
    ASSERT_EQ(codes.size(), 1u) << engine.renderText();
    EXPECT_EQ(codes[0], "AS401");
}

// ---------------------------------------------------------------------
// Unified analyzer + legacy validator shim
// ---------------------------------------------------------------------

TEST(Analyzer, CombinesConsistencyAndSanitizer)
{
    SharedChainFixture f;
    KernelPlan &plan = f.compiled.kernels[0];
    plan.launch.block = 4096;  // AS005
    plan.barriers.clear();     // AS101
    DiagnosticEngine engine;
    EXPECT_FALSE(analyzeCompiledCluster(f.graph, f.cluster, f.compiled,
                                        kV100, engine));
    EXPECT_EQ(engine.withCodePrefix("AS0").size(), 1u);
    EXPECT_EQ(engine.withCodePrefix("AS1").size(), 1u);

    AnalysisOptions no_sanitize;
    no_sanitize.sanitize = false;
    engine.clear();
    analyzeCompiledCluster(f.graph, f.cluster, f.compiled, kV100, engine,
                           no_sanitize);
    EXPECT_TRUE(engine.withCodePrefix("AS1").empty());
}

TEST(Analyzer, ConsistencyFindingsCarryCodes)
{
    SharedChainFixture f;
    f.compiled.kernels[0].launch.block = 4096;
    DiagnosticEngine engine;
    analyzeCompiledCluster(f.graph, f.cluster, f.compiled, kV100, engine,
                           AnalysisOptions::consistencyOnly());
    ASSERT_EQ(engine.size(), 1u);
    EXPECT_EQ(engine.diagnostics()[0].code, "AS005");
    EXPECT_NE(engine.diagnostics()[0].message.find("illegal block size"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------

TEST(Analysis, StitchedFig7IsHazardFree)
{
    testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>());
    session.compile();
    EXPECT_TRUE(session.diagnostics().empty())
        << session.diagnostics().renderText();
}

TEST(Analysis, SessionStrictModeAcceptsCleanPlans)
{
    testing::Fig7Graph f = testing::buildFig7();
    SessionOptions options;
    options.strict_analysis = true;
    Session session(f.graph, std::make_unique<AStitchBackend>(), options);
    EXPECT_NO_THROW(session.compile());
}

TEST(Analysis, NonStitchBackendsProduceNoFindings)
{
    testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<XlaBackend>());
    session.compile();
    EXPECT_TRUE(session.diagnostics().empty())
        << session.diagnostics().renderText();
}

TEST(Analysis, CodegenEmitsStructuralMetadata)
{
    // The stitched softmax-like cluster must carry partitions, barrier
    // points and arena slots for the sanitizer to chew on.
    testing::Fig7Graph f = testing::buildFig7();
    auto clusters =
        remoteStitch(f.graph, findMemoryIntensiveClusters(f.graph));
    ASSERT_FALSE(clusters.empty());
    StitchDiagnostics diag;
    const CompiledCluster compiled = compileStitchOp(
        f.graph, clusters[0], kV100, AStitchOptions{}, &diag);
    ASSERT_EQ(compiled.kernels.size(), 1u);
    const KernelPlan &plan = compiled.kernels[0];
    EXPECT_TRUE(diag.findings.empty()) << diag.findings.renderText();
    bool any_partition = false;
    for (const ScheduledOp &op : plan.ops)
        any_partition |= op.partition.known();
    EXPECT_TRUE(any_partition);
    int shared_stores_with_readers = 0;
    for (const ScheduledOp &op : plan.ops) {
        if (op.out_space != BufferSpace::Shared)
            continue;
        for (NodeId u : f.graph.users(op.node)) {
            if (clusters[0].contains(u)) {
                ++shared_stores_with_readers;
                break;
            }
        }
    }
    if (shared_stores_with_readers > 0) {
        EXPECT_FALSE(plan.barriers.empty());
        EXPECT_FALSE(plan.shared_slots.empty());
    }
}

} // namespace
} // namespace astitch
