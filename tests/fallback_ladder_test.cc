/**
 * @file
 * Tests of fault-tolerant compilation: the per-cluster fallback ladder,
 * session-level recoveries (clustering, parallel section, cache
 * publish), the AS6xx degradation diagnostics, and the JIT cache's
 * degraded-entry handling.
 */
#include <gtest/gtest.h>

#include "backends/tf/tf_backend.h"
#include "core/astitch_backend.h"
#include "runtime/dynamic_session.h"
#include "runtime/fallback_ladder.h"
#include "runtime/jit_cache.h"
#include "runtime/session.h"
#include "support/fault_injection.h"
#include "test_graphs.h"
#include "workloads/bert.h"
#include "workloads/common.h"

namespace astitch {
namespace {

/** Fresh AStitch session over Fig. 7 with the given fault plan. */
SessionOptions
faultOptions(const std::string &plan)
{
    SessionOptions options;
    options.fault_plan = plan;
    options.compile_threads = 1; // deterministic hit attribution
    return options;
}

/** Reference outputs: kernel-per-op framework executor, no faults. */
std::vector<Tensor>
referenceOutputs(const Graph &graph, const TensorMap &feeds)
{
    Session session(graph, std::make_unique<TfBackend>());
    return session.run(feeds).outputs;
}

void
expectSameOutputs(const std::vector<Tensor> &got,
                  const std::vector<Tensor> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].allClose(want[i], 1e-5, 1e-6))
            << "output " << i << " diverged from the reference";
}

bool
hasCode(const DiagnosticEngine &engine, const std::string &code)
{
    return !engine.withCodePrefix(code).empty();
}

bool
anyCauseContains(const DegradationReport &report, const std::string &text)
{
    for (const ClusterDegradation &cluster : report.clusters)
        for (const std::string &cause : cluster.causes)
            if (cause.find(text) != std::string::npos)
                return true;
    return false;
}

// ---------------------------------------------------------------------
// Ladder levels, rung by rung.
// ---------------------------------------------------------------------

TEST(FallbackLadder, CleanCompileIsNotDegraded)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>());
    session.compile();
    EXPECT_FALSE(session.degradation().degraded());
    EXPECT_EQ(session.degradation().maxLevel(), LadderLevel::FullStitch);
    EXPECT_FALSE(hasCode(session.diagnostics(), "AS6"));
}

TEST(FallbackLadder, BackendFaultDemotesToLocalOnly)
{
    const testing::Fig7Graph f = testing::buildFig7();
    const TensorMap feeds = workloads::makeRandomFeeds(f.graph);
    const std::vector<Tensor> want = referenceOutputs(f.graph, feeds);

    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("backend-compile"));
    ASSERT_NO_THROW(session.compile());

    const DegradationReport &report = session.degradation();
    EXPECT_TRUE(report.degraded());
    EXPECT_EQ(report.maxLevel(), LadderLevel::LocalOnly);
    EXPECT_EQ(report.numDegradedClusters(),
              static_cast<int>(report.clusters.size()));
    EXPECT_TRUE(anyCauseContains(report, "injected fault"));
    EXPECT_TRUE(hasCode(session.diagnostics(), "AS601"));

    expectSameOutputs(session.run(feeds).outputs, want);
}

TEST(FallbackLadder, TwoFaultsDemoteToLoopFusion)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("backend-compile,ladder-local-only"));
    ASSERT_NO_THROW(session.compile());
    EXPECT_EQ(session.degradation().maxLevel(), LadderLevel::LoopFusion);
}

TEST(FallbackLadder, AllLadderFaultsLandOnKernelPerOp)
{
    const testing::Fig7Graph f = testing::buildFig7();
    const TensorMap feeds = workloads::makeRandomFeeds(f.graph);
    const std::vector<Tensor> want = referenceOutputs(f.graph, feeds);

    Session session(
        f.graph, std::make_unique<AStitchBackend>(),
        faultOptions(
            "backend-compile,ladder-local-only,ladder-loop-fusion"));
    ASSERT_NO_THROW(session.compile());
    EXPECT_EQ(session.degradation().maxLevel(), LadderLevel::KernelPerOp);

    expectSameOutputs(session.run(feeds).outputs, want);
}

TEST(FallbackLadder, LadderOnlySitesAreCleanWhenFullStitchSucceeds)
{
    // The fallback rungs never run when rung 0 succeeds, so faulting
    // them alone must leave the compile untouched.
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("ladder-local-only,ladder-loop-fusion"));
    ASSERT_NO_THROW(session.compile());
    EXPECT_FALSE(session.degradation().degraded());
}

TEST(FallbackLadder, TransientFaultRetriesOnTheSameRung)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("backend-compile:1"));
    ASSERT_NO_THROW(session.compile());

    const DegradationReport &report = session.degradation();
    EXPECT_EQ(report.maxLevel(), LadderLevel::FullStitch);
    EXPECT_GE(report.totalRetries(), 1);
    EXPECT_TRUE(report.degraded()); // retries count as degradation
    EXPECT_TRUE(hasCode(session.diagnostics(), "AS602"));
    EXPECT_FALSE(hasCode(session.diagnostics(), "AS601"));
}

TEST(FallbackLadder, FailFastRethrowsTheOriginalFault)
{
    const testing::Fig7Graph f = testing::buildFig7();
    SessionOptions options = faultOptions("backend-compile");
    options.fail_fast = true;
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    options);
    EXPECT_THROW(session.compile(), PermanentFault);
}

// ---------------------------------------------------------------------
// Organic (non-injected) failures ride the same ladder.
// ---------------------------------------------------------------------

/** Backend whose compileCluster always throws @p E. */
template <typename E>
class ThrowingBackend : public Backend
{
  public:
    std::string name() const override { return "throwing"; }
    CompiledCluster compileCluster(const Graph &, const Cluster &,
                                   const GpuSpec &) const override
    {
        throw E("synthetic backend failure");
    }
};

TEST(FallbackLadder, SanitizerPolicyErrorIsContained)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(
        f.graph,
        std::make_unique<ThrowingBackend<SanitizerPolicyError>>());
    ASSERT_NO_THROW(session.compile());
    const DegradationReport &report = session.degradation();
    EXPECT_EQ(report.maxLevel(), LadderLevel::LocalOnly);
    EXPECT_TRUE(anyCauseContains(report, "sanitizer policy:"));
}

TEST(FallbackLadder, PanicErrorIsContained)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph,
                    std::make_unique<ThrowingBackend<PanicError>>());
    ASSERT_NO_THROW(session.compile());
    EXPECT_TRUE(anyCauseContains(session.degradation(),
                                 "internal error:"));
}

TEST(FallbackLadder, MemoryPlannerDeadEndDemotesInsteadOfThrowing)
{
    // A shared-memory budget too small to hold even one reduce scratch
    // buffer sends the planner's Regional->Global demotion loop into a
    // dead end (no victim left to demote) — the classic organic fatal
    // this PR contains.
    AStitchOptions tiny_smem;
    tiny_smem.smem_budget_per_block = 4;

    const testing::Fig7Graph f = testing::buildFig7();
    const TensorMap feeds = workloads::makeRandomFeeds(f.graph);
    const std::vector<Tensor> want = referenceOutputs(f.graph, feeds);

    Session session(f.graph,
                    std::make_unique<AStitchBackend>(tiny_smem));
    ASSERT_NO_THROW(session.compile());

    const DegradationReport &report = session.degradation();
    EXPECT_TRUE(report.degraded());
    EXPECT_GE(report.maxLevel(), LadderLevel::LocalOnly);
    EXPECT_TRUE(anyCauseContains(report, "shared-memory budget"));

    expectSameOutputs(session.run(feeds).outputs, want);
}

TEST(FallbackLadder, MemoryPlannerDeadEndStillThrowsUnderFailFast)
{
    AStitchOptions tiny_smem;
    tiny_smem.smem_budget_per_block = 4;
    SessionOptions options;
    options.fail_fast = true;

    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph,
                    std::make_unique<AStitchBackend>(tiny_smem),
                    options);
    EXPECT_THROW(session.compile(), FatalError);
}

// ---------------------------------------------------------------------
// Direct ladder / kernel-per-op unit coverage.
// ---------------------------------------------------------------------

TEST(FallbackLadder, KernelPerOpCoversEveryClusterNode)
{
    const testing::Fig7Graph f = testing::buildFig7();
    const std::vector<Cluster> clusters =
        findMemoryIntensiveClusters(f.graph);
    ASSERT_FALSE(clusters.empty());
    for (const Cluster &cluster : clusters) {
        const CompiledCluster compiled = compileClusterKernelPerOp(
            f.graph, cluster, GpuSpec::v100());
        EXPECT_EQ(compiled.kernels.size(), cluster.nodes.size());
    }
}

TEST(FallbackLadder, LadderFunctionRecordsOneCausePerDemotion)
{
    const testing::Fig7Graph f = testing::buildFig7();
    const std::vector<Cluster> clusters =
        findMemoryIntensiveClusters(f.graph);
    ASSERT_FALSE(clusters.empty());

    const ThrowingBackend<FatalError> backend;
    const LadderOutcome outcome = compileClusterWithLadder(
        f.graph, clusters[0], GpuSpec::v100(), backend, LadderPolicy{});
    EXPECT_EQ(outcome.degradation.level, LadderLevel::LocalOnly);
    ASSERT_EQ(outcome.degradation.causes.size(), 1u);
    EXPECT_NE(outcome.degradation.causes[0].find("full-stitch:"),
              std::string::npos);
    EXPECT_NE(outcome.degradation.causes[0].find("compile error:"),
              std::string::npos);
    EXPECT_FALSE(outcome.compiled.kernels.empty());
}

// ---------------------------------------------------------------------
// Session-scope recoveries: clustering, parallel section, cache.
// ---------------------------------------------------------------------

TEST(FallbackLadder, ClusteringFaultFallsBackToSingletons)
{
    const testing::Fig7Graph f = testing::buildFig7();
    const TensorMap feeds = workloads::makeRandomFeeds(f.graph);
    const std::vector<Tensor> want = referenceOutputs(f.graph, feeds);

    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("clustering"));
    ASSERT_NO_THROW(session.compile());
    EXPECT_TRUE(session.degradation().clustering_fallback);
    EXPECT_TRUE(hasCode(session.diagnostics(), "AS603"));

    expectSameOutputs(session.run(feeds).outputs, want);
}

TEST(FallbackLadder, TransientClusteringFaultJustRetries)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    faultOptions("clustering:1"));
    ASSERT_NO_THROW(session.compile());
    EXPECT_FALSE(session.degradation().clustering_fallback);
    EXPECT_EQ(session.degradation().session_retries, 1);
}

TEST(FallbackLadder, ThreadPoolFaultFallsBackToSerialCompilation)
{
    // Needs a graph with several clusters: a single-cluster compile
    // never enters the pool (parallelFor degenerates to the serial
    // loop), so Fig. 7 would not reach the fault site.
    const Graph graph =
        workloads::buildBert(workloads::BertConfig::tiny());
    SessionOptions options = faultOptions("thread-pool-task");
    options.compile_threads = 2; // must be pooled to hit the site
    Session session(graph, std::make_unique<AStitchBackend>(),
                    options);
    ASSERT_NO_THROW(session.compile());
    EXPECT_TRUE(session.degradation().serial_fallback);
    EXPECT_EQ(session.degradation().maxLevel(), LadderLevel::FullStitch);
    EXPECT_TRUE(hasCode(session.diagnostics(), "AS604"));
}

TEST(FallbackLadder, CachePublishFaultBypassesTheCache)
{
    JitCache::global().clear();
    const testing::Fig7Graph f = testing::buildFig7();
    SessionOptions options = faultOptions("cache-publish");
    options.use_jit_cache = true;
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    options);
    ASSERT_NO_THROW(session.compile());
    EXPECT_TRUE(session.degradation().cache_bypassed);
    EXPECT_TRUE(hasCode(session.diagnostics(), "AS605"));
    // The publish was lost: nothing landed in the cache.
    EXPECT_EQ(JitCache::global().size(), 0u);
}

TEST(FallbackLadder, TransientCachePublishFaultRetriesAndPublishes)
{
    JitCache::global().clear();
    const testing::Fig7Graph f = testing::buildFig7();
    SessionOptions options = faultOptions("cache-publish:1");
    options.use_jit_cache = true;
    Session session(f.graph, std::make_unique<AStitchBackend>(),
                    options);
    ASSERT_NO_THROW(session.compile());
    EXPECT_FALSE(session.degradation().cache_bypassed);
    EXPECT_GE(session.degradation().session_retries, 1);
    EXPECT_EQ(JitCache::global().size(), 1u);
}

TEST(FallbackLadder, DegradedCacheEntryIsUpgradedOnTheNextCompile)
{
    JitCache::global().clear();
    const testing::Fig7Graph f = testing::buildFig7();

    // Session A publishes a degraded compilation.
    SessionOptions degraded_options = faultOptions("backend-compile");
    degraded_options.use_jit_cache = true;
    Session degraded(f.graph, std::make_unique<AStitchBackend>(),
                     degraded_options);
    ASSERT_NO_THROW(degraded.compile());
    ASSERT_TRUE(degraded.degradation().degraded());
    ASSERT_EQ(JitCache::global().size(), 1u);

    // Session B (no faults) hits the degraded entry, refuses to serve
    // it as full-stitch, recompiles clean and republishes.
    SessionOptions clean_options;
    clean_options.use_jit_cache = true;
    Session upgraded(f.graph, std::make_unique<AStitchBackend>(),
                     clean_options);
    ASSERT_NO_THROW(upgraded.compile());
    EXPECT_FALSE(upgraded.degradation().degraded());
    EXPECT_TRUE(hasCode(upgraded.diagnostics(), "AS606"));

    // Session C now gets a clean hit — no AS606, no degradation.
    Session clean(f.graph, std::make_unique<AStitchBackend>(),
                  clean_options);
    ASSERT_NO_THROW(clean.compile());
    EXPECT_FALSE(clean.degradation().degraded());
    EXPECT_FALSE(hasCode(clean.diagnostics(), "AS606"));
    JitCache::global().clear();
}

// ---------------------------------------------------------------------
// DynamicSession aggregation and report rendering.
// ---------------------------------------------------------------------

TEST(FallbackLadder, DynamicSessionMergesDegradationAcrossBuckets)
{
    DynamicSessionOptions options;
    options.session = faultOptions("backend-compile");
    DynamicSession session(
        [](const std::vector<std::int64_t> &dims) {
            return std::move(
                testing::buildFig7(dims[0], dims[1]).graph);
        },
        [] { return std::make_unique<AStitchBackend>(); }, options);

    ASSERT_NO_THROW(session.profile({8, 16}));
    ASSERT_NO_THROW(session.profile({16, 32}));
    const DegradationReport report = session.degradation();
    EXPECT_TRUE(report.degraded());
    EXPECT_EQ(report.maxLevel(), LadderLevel::LocalOnly);
    EXPECT_GE(report.clusters.size(), 2u);
}

TEST(FallbackLadder, ReportRenderingAndMerge)
{
    DegradationReport clean;
    EXPECT_FALSE(clean.degraded());
    EXPECT_EQ(clean.renderText(), "");
    EXPECT_NE(clean.renderJson().find("\"degraded\": false"),
              std::string::npos);

    DegradationReport report;
    ClusterDegradation cluster;
    cluster.level = LadderLevel::LoopFusion;
    cluster.retries = 1;
    cluster.causes.push_back("full-stitch: compile error: boom");
    report.clusters.push_back(cluster);
    report.clusters.push_back(ClusterDegradation{});
    report.serial_fallback = true;
    report.session_retries = 2;

    EXPECT_TRUE(report.degraded());
    EXPECT_EQ(report.maxLevel(), LadderLevel::LoopFusion);
    EXPECT_EQ(report.numDegradedClusters(), 1);
    EXPECT_EQ(report.totalRetries(), 3);

    const std::string text = report.renderText();
    EXPECT_NE(text.find("loop-fusion"), std::string::npos);
    EXPECT_NE(text.find("boom"), std::string::npos);
    const std::string json = report.renderJson();
    EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(json.find("\"serial_fallback\": true"),
              std::string::npos);

    DegradationReport other;
    other.clusters.push_back(ClusterDegradation{});
    other.clustering_fallback = true;
    other.session_retries = 1;
    report.merge(other);
    EXPECT_EQ(report.clusters.size(), 3u);
    EXPECT_TRUE(report.clustering_fallback);
    EXPECT_TRUE(report.serial_fallback);
    EXPECT_EQ(report.session_retries, 3);
}

TEST(FallbackLadder, LadderLevelNamesAreStable)
{
    EXPECT_STREQ(ladderLevelName(LadderLevel::FullStitch),
                 "full-stitch");
    EXPECT_STREQ(ladderLevelName(LadderLevel::LocalOnly), "local-only");
    EXPECT_STREQ(ladderLevelName(LadderLevel::LoopFusion),
                 "loop-fusion");
    EXPECT_STREQ(ladderLevelName(LadderLevel::KernelPerOp),
                 "kernel-per-op");
}

} // namespace
} // namespace astitch
