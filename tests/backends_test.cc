/**
 * @file
 * Per-backend behaviour tests: dispatch overheads, duplication caps,
 * Ansor-vs-TVM mapping quality, CUDA-graph capture, memcpy modelling.
 */
#include <gtest/gtest.h>

#include "backends/tf/cuda_graph_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "compiler/loop_fusion.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "test_graphs.h"
#include "workloads/common.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

TEST(BackendNames, AreDistinct)
{
    EXPECT_EQ(TfBackend().name(), "tensorflow");
    EXPECT_EQ(CudaGraphBackend().name(), "tf-cudagraph");
    EXPECT_EQ(XlaBackend().name(), "xla");
    EXPECT_EQ(TvmBackend().name(), "tvm");
    EXPECT_EQ(TvmBackend(true).name(), "ansor");
    EXPECT_EQ(TrtBackend().name(), "tensorrt");
    EXPECT_EQ(AStitchBackend().name(), "astitch");
}

TEST(CudaGraph, SameKernelsLowerOverheadThanTf)
{
    Graph g = testing::buildSoftmax(512, 256);
    Session tf(g, std::make_unique<TfBackend>());
    Session cg(g, std::make_unique<CudaGraphBackend>());
    const auto tf_report = tf.profile();
    const auto cg_report = cg.profile();
    // Identical kernel population, captured dispatch.
    EXPECT_EQ(cg_report.memKernelCount(), tf_report.memKernelCount());
    EXPECT_NEAR(cg_report.breakdown.mem_us, tf_report.breakdown.mem_us,
                1e-6);
    EXPECT_LT(cg_report.breakdown.overhead_us,
              0.5 * tf_report.breakdown.overhead_us);
    EXPECT_LT(cg_report.end_to_end_us, tf_report.end_to_end_us);
}

TEST(CudaGraph, StillLosesToAStitchOnTraffic)
{
    // The Sec 7 argument: capture removes dispatch, not memory traffic.
    Graph g = testing::buildSoftmax(8192, 512);
    Session cg(g, std::make_unique<CudaGraphBackend>());
    Session as(g, std::make_unique<AStitchBackend>());
    const auto cg_report = cg.profile();
    const auto as_report = as.profile();
    EXPECT_GT(cg_report.breakdown.mem_us, as_report.breakdown.mem_us);
    EXPECT_LT(as_report.end_to_end_us, cg_report.end_to_end_us);
}

TEST(Ansor, SameFusionScopeAsTvmBetterMapping)
{
    // The DIEN reduce: Ansor keeps TVM's kernel count but lifts the
    // occupancy of the reduce kernel.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({750000, 32});
    g.markOutput(b.reduceSum(b.mul(x, x), {1}));
    Session tvm(g, std::make_unique<TvmBackend>());
    Session ansor(g, std::make_unique<TvmBackend>(true));
    const auto tvm_report = tvm.profile();
    const auto ansor_report = ansor.profile();
    EXPECT_EQ(ansor_report.memKernelCount(), tvm_report.memKernelCount());
    EXPECT_GT(ansor_report.counters.avgOccupancyTop(1.0),
              tvm_report.counters.avgOccupancyTop(1.0));
    EXPECT_LT(ansor_report.end_to_end_us, tvm_report.end_to_end_us);
}

TEST(LoopFusion, DuplicationCapMakesWideFanoutProducersRoots)
{
    // A producer feeding many reduce kernels: with a tiny cap it
    // materializes instead of being inlined everywhere.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({16, 64});
    NodeId shared = b.tanh(x);
    for (int i = 0; i < 6; ++i)
        g.markOutput(b.reduceSum(b.mul(shared, b.constantScalar(
                                                   1.0f + i)),
                                 {1}));
    const Cluster cluster = findMemoryIntensiveClusters(g)[0];

    LoopFusionRules loose;
    loose.max_duplication = 64;
    const auto many =
        compileClusterLoopFusion(g, cluster, kV100, loose);
    LoopFusionRules tight;
    tight.max_duplication = 2;
    const auto few = compileClusterLoopFusion(g, cluster, kV100, tight);

    auto kernels_with = [&](const CompiledCluster &c, NodeId n) {
        int count = 0;
        for (const auto &k : c.kernels)
            count += k.containsNode(n);
        return count;
    };
    EXPECT_EQ(kernels_with(many, shared), 6);
    EXPECT_EQ(kernels_with(few, shared), 1);
    // Materializing adds one kernel for the shared producer.
    EXPECT_EQ(few.kernels.size(), many.kernels.size() + 1);
}

TEST(LoopFusion, TiledColumnReduceImprovesCoalescing)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({2048, 128});
    g.markOutput(b.reduceSum(x, {0}));
    const Cluster cluster = findMemoryIntensiveClusters(g)[0];

    LoopFusionRules plain;
    const auto naive = compileClusterLoopFusion(g, cluster, kV100, plain);
    LoopFusionRules tiled;
    tiled.tiled_column_reduce = true;
    const auto smart = compileClusterLoopFusion(g, cluster, kV100, tiled);

    EXPECT_LT(naive.kernels[0].read_coalescing, 1.0);
    EXPECT_DOUBLE_EQ(smart.kernels[0].read_coalescing, 1.0);
    EXPECT_LT(smart.kernels[0].atomic_operations,
              naive.kernels[0].atomic_operations);
}

TEST(Memcpy, TfIssuesMoreActivitiesThanCompiledBackends)
{
    Graph g = workloads::inferenceWorkloads()[3].build(); // Transformer
    Session tf(g, std::make_unique<TfBackend>());
    Session xla(g, std::make_unique<XlaBackend>());
    Session as(g, std::make_unique<AStitchBackend>());
    const int tf_cpy = tf.profile().cpyCount();
    const int xla_cpy = xla.profile().cpyCount();
    const int as_cpy = as.profile().cpyCount();
    EXPECT_GT(tf_cpy, xla_cpy);
    EXPECT_GT(xla_cpy, as_cpy);
}

TEST(Trt, MoreKernelsThanXlaOnBroadcastHeavyGraphs)
{
    // TRT cuts at every one-to-many dependency, so broadcast-rich
    // models fragment harder than under XLA — the Fig. 11a ordering.
    Graph g = workloads::inferenceWorkloads()[2].build(); // BERT
    Session xla(g, std::make_unique<XlaBackend>());
    Session trt(g, std::make_unique<TrtBackend>());
    EXPECT_GE(trt.profile().memKernelCount(),
              xla.profile().memKernelCount());
}

TEST(FrameworkOverhead, AppliesToComputeKernelsToo)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64, 64});
    NodeId w = b.parameter({64, 64});
    b.output(b.tanh(b.matmul(x, w)));
    Session tf(g, std::make_unique<TfBackend>());
    Session xla(g, std::make_unique<XlaBackend>());
    double tf_compute_overhead = 0, xla_compute_overhead = 0;
    for (const auto &k : tf.profile().counters.kernels) {
        if (k.category == KernelCategory::ComputeIntensive)
            tf_compute_overhead = k.launch_overhead_us;
    }
    for (const auto &k : xla.profile().counters.kernels) {
        if (k.category == KernelCategory::ComputeIntensive)
            xla_compute_overhead = k.launch_overhead_us;
    }
    EXPECT_GT(tf_compute_overhead, xla_compute_overhead);
}

TEST(AStitchOptions, SmemBudgetDemotesWithoutBreakingCompilation)
{
    // Two chained softmaxes: the wide intermediate between them is a
    // regional buffer that a tight budget must demote.
    Graph g("softmax_chain");
    {
        GraphBuilder b(g);
        NodeId x = b.parameter({2048, 1024});
        g.markOutput(b.softmax(b.softmax(x)));
    }
    const Cluster cluster = findMemoryIntensiveClusters(g)[0];
    AStitchOptions tight;
    tight.smem_budget_per_block = 5000; // reduce slab + a little
    StitchDiagnostics diag;
    const auto compiled =
        compileStitchOp(g, cluster, kV100, tight, &diag);
    EXPECT_GT(diag.memory.num_demoted, 0);
    EXPECT_LE(diag.memory.smem_per_block, 5000);
    // The demoted element-wise buffers rematerialize (recompute per
    // consuming group) rather than spill; the plan stays valid.
    EXPECT_FALSE(diag.memory.rematerialized.empty());
    EXPECT_EQ(compiled.kernels.size(), 1u);
}

TEST(AStitch, ElementwiseOnlyClusterNeedsNoBarriers)
{
    Graph g = testing::buildElementwiseChain(4096, 8);
    Session session(g, std::make_unique<AStitchBackend>());
    const auto &compiled = session.compiled();
    ASSERT_EQ(compiled.size(), 1u);
    const KernelPlan &k = compiled[0].kernels[0];
    EXPECT_EQ(k.num_global_barriers, 0);
    EXPECT_EQ(k.smem_per_block, 0);
}

} // namespace
} // namespace astitch
