/**
 * @file
 * Parameterized property tests: compiler invariants swept over random
 * graph topologies and shape grids (TEST_P / INSTANTIATE_TEST_SUITE_P).
 */
#include <gtest/gtest.h>

#include <set>

#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "core/launch_config.h"
#include "runtime/session.h"
#include "workloads/common.h"
#include "workloads/random_graph.h"

namespace astitch {
namespace {

using namespace workloads;

const GpuSpec kV100 = GpuSpec::v100();

// ---------------------------------------------------------------------
// Invariants over random graphs.
// ---------------------------------------------------------------------

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Graph
    makeGraph(int nodes = 300) const
    {
        RandomGraphConfig config;
        config.num_nodes = nodes;
        config.seed = GetParam();
        config.max_dim = 32;
        return buildRandomGraph(config);
    }
};

TEST_P(RandomGraphProperty, ClustersPartitionMemoryIntensiveOps)
{
    const Graph g = makeGraph();
    const auto clusters = findMemoryIntensiveClusters(g);
    std::set<NodeId> seen;
    for (const auto &c : clusters) {
        for (NodeId n : c.nodes) {
            EXPECT_TRUE(isMemoryIntensive(g.node(n).kind()));
            EXPECT_TRUE(seen.insert(n).second)
                << "node in two clusters";
        }
    }
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        if (isMemoryIntensive(g.node(id).kind()) &&
            !isSource(g.node(id).kind())) {
            EXPECT_TRUE(seen.count(id)) << "unclustered node " << id;
        }
    }
}

TEST_P(RandomGraphProperty, ClusterFrontiersAreConsistent)
{
    const Graph g = makeGraph();
    for (const auto &c : findMemoryIntensiveClusters(g)) {
        for (NodeId in : c.inputs)
            EXPECT_FALSE(c.contains(in));
        for (NodeId out : c.outputs) {
            EXPECT_TRUE(c.contains(out));
            bool escapes = g.isOutput(out);
            for (NodeId u : g.users(out))
                escapes |= !c.contains(u);
            EXPECT_TRUE(escapes);
        }
    }
}

TEST_P(RandomGraphProperty, RemoteStitchingNeverCreatesUnitCycles)
{
    const Graph g = makeGraph();
    // Session::compile() fatals if the unit DAG is cyclic; AStitch runs
    // remote stitching, so a successful compile proves acyclicity.
    Session session(g, std::make_unique<AStitchBackend>());
    EXPECT_NO_THROW(session.compile());
}

TEST_P(RandomGraphProperty, EveryScheduledKernelIsPriceable)
{
    const Graph g = makeGraph();
    const CostModel model(kV100);
    for (const auto &make :
         {std::function<std::unique_ptr<Backend>()>(
              [] { return std::make_unique<XlaBackend>(); }),
          std::function<std::unique_ptr<Backend>()>(
              [] { return std::make_unique<AStitchBackend>(); })}) {
        Session session(g, make());
        for (const auto &compiled : session.compiled()) {
            for (const auto &kernel : compiled.kernels) {
                const auto desc = workDescFor(g, kernel);
                EXPECT_NO_THROW(model.priceKernel(desc));
                EXPECT_GE(desc.bytes_read, 0.0);
                EXPECT_GE(desc.fp_instructions, 0.0);
            }
        }
    }
}

TEST_P(RandomGraphProperty, StitchedPlansScheduleEveryClusterNodeOnce)
{
    const Graph g = makeGraph();
    Session session(g, std::make_unique<AStitchBackend>());
    const auto &clusters = session.clusters();
    const auto &compiled = session.compiled();
    ASSERT_EQ(clusters.size(), compiled.size());
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        ASSERT_EQ(compiled[i].kernels.size(), 1u);
        const KernelPlan &k = compiled[i].kernels[0];
        std::set<NodeId> scheduled;
        for (const auto &op : k.ops)
            EXPECT_TRUE(scheduled.insert(op.node).second);
        EXPECT_EQ(scheduled.size(), clusters[i].nodes.size());
    }
}

TEST_P(RandomGraphProperty, StitchedResourcesRespectDeviceLimits)
{
    const Graph g = makeGraph();
    Session session(g, std::make_unique<AStitchBackend>());
    for (const auto &compiled : session.compiled()) {
        for (const auto &k : compiled.kernels) {
            EXPECT_LE(k.smem_per_block, kV100.smem_per_block_bytes);
            EXPECT_LE(k.regs_per_thread, kV100.max_regs_per_thread);
            EXPECT_LE(k.launch.block, kV100.max_threads_per_block);
            if (k.num_global_barriers > 0) {
                const Occupancy occ = computeOccupancy(
                    kV100, k.launch.block, k.regs_per_thread,
                    k.smem_per_block);
                EXPECT_LE(k.launch.grid, occ.blocksPerWave(kV100));
            }
        }
    }
}

TEST_P(RandomGraphProperty, AStitchNeverRecomputes)
{
    const Graph g = makeGraph();
    Session session(g, std::make_unique<AStitchBackend>());
    for (const auto &compiled : session.compiled()) {
        for (const auto &k : compiled.kernels) {
            for (const auto &op : k.ops)
                EXPECT_DOUBLE_EQ(op.recompute_factor, 1.0);
        }
    }
}

TEST_P(RandomGraphProperty, FunctionalEquivalenceAcrossBackends)
{
    RandomGraphConfig config;
    config.num_nodes = 100;
    config.seed = GetParam() + 1000;
    config.max_dim = 12;
    const Graph g = buildRandomGraph(config);
    const TensorMap feeds = makeRandomFeeds(g, GetParam());
    const auto expected = Evaluator(g).run(feeds);

    for (const auto &make :
         {std::function<std::unique_ptr<Backend>()>(
              [] { return std::make_unique<XlaBackend>(); }),
          std::function<std::unique_ptr<Backend>()>(
              [] { return std::make_unique<TvmBackend>(); }),
          std::function<std::unique_ptr<Backend>()>(
              [] { return std::make_unique<AStitchBackend>(); })}) {
        Session session(g, make());
        const auto report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(
                report.outputs[i].allClose(expected[i], 1e-4, 1e-5))
                << report.backend_name << " seed " << GetParam()
                << " output " << i;
        }
    }
}

TEST_P(RandomGraphProperty, OptimizedCompilePassesMatchReferences)
{
    const Graph g = makeGraph();
    const auto clusters = findMemoryIntensiveClusters(g);
    const auto reference = findMemoryIntensiveClustersReference(g);
    ASSERT_EQ(clusters.size(), reference.size());
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        EXPECT_EQ(clusters[i].nodes, reference[i].nodes);
        EXPECT_EQ(clusters[i].inputs, reference[i].inputs);
        EXPECT_EQ(clusters[i].outputs, reference[i].outputs);
    }
    for (int budget : {0, 1, 7, 64}) {
        const auto stitched = remoteStitch(g, clusters, budget);
        const auto stitched_ref =
            remoteStitchReference(g, reference, budget);
        ASSERT_EQ(stitched.size(), stitched_ref.size())
            << "budget " << budget;
        for (std::size_t i = 0; i < stitched.size(); ++i)
            EXPECT_EQ(stitched[i].nodes, stitched_ref[i].nodes)
                << "budget " << budget;
    }
}

TEST_P(RandomGraphProperty, PassTimingsAreCoherent)
{
    const Graph g = makeGraph();
    Session session(g, std::make_unique<AStitchBackend>());
    const double compile_ms = session.compile();
    const CompilePassTimings &t = session.passTimings();
    EXPECT_GE(t.clustering_ms, 0.0);
    EXPECT_GE(t.remote_stitch_ms, 0.0);
    EXPECT_GE(t.backend_compile_ms, 0.0);
    EXPECT_GE(t.analysis_ms, 0.0);
    EXPECT_GT(t.parallel_section_ms, 0.0);
    EXPECT_GE(t.scheduling_ms, 0.0);
    // The disjoint wall spans cannot exceed the whole compile.
    EXPECT_LE(t.accountedWallMs(), compile_ms + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

// ---------------------------------------------------------------------
// Launch-configuration equivalence: the binary-search relax step and
// the memoized occupancy cache must reproduce the reference
// linear-scan/uncached results bit-for-bit on every device model.
// ---------------------------------------------------------------------

TEST(LaunchConfigEquivalence, MatchesReferenceAcrossDevicesAndShapes)
{
    clearOccupancyCache();
    for (const GpuSpec &spec :
         {GpuSpec::v100(), GpuSpec::t4(), GpuSpec::a100()}) {
        for (int block : {32, 64, 128, 192, 256, 512, 1024}) {
            if (block > spec.max_threads_per_block)
                continue;
            for (std::int64_t smem : {0L, 2048L, 16384L, 49152L}) {
                if (smem > spec.smem_per_block_bytes)
                    continue;
                for (bool barrier : {false, true}) {
                    for (std::int64_t grid : {1L, 1000L, 1L << 20}) {
                        const LaunchConfig opt = configureLaunch(
                            spec, grid, block, smem, barrier);
                        const LaunchConfig ref = configureLaunchReference(
                            spec, grid, block, smem, barrier);
                        EXPECT_EQ(opt.launch, ref.launch);
                        EXPECT_EQ(opt.regs_per_thread,
                                  ref.regs_per_thread)
                            << spec.name << " block " << block << " smem "
                            << smem;
                        EXPECT_EQ(opt.blocks_per_wave,
                                  ref.blocks_per_wave);
                        EXPECT_EQ(opt.grid_packing, ref.grid_packing);
                    }
                }
            }
        }
    }
}

TEST(OccupancyCache, HitsReturnTheUncachedResult)
{
    clearOccupancyCache();
    const GpuSpec spec = GpuSpec::v100();
    const auto baseline = occupancyCacheStats();
    EXPECT_EQ(baseline.entries, 0u);
    for (int pass = 0; pass < 2; ++pass) {
        for (int block : {64, 256, 1024}) {
            for (int regs : {0, 32, 96}) { // 0 normalizes like the direct path
                for (std::int64_t smem : {0L, 8192L}) {
                    const Occupancy cached =
                        computeOccupancyCached(spec, block, regs, smem);
                    const Occupancy direct =
                        computeOccupancy(spec, block, regs, smem);
                    EXPECT_EQ(cached.blocks_per_sm, direct.blocks_per_sm);
                    EXPECT_EQ(cached.warps_per_sm, direct.warps_per_sm);
                    EXPECT_DOUBLE_EQ(cached.theoretical,
                                     direct.theoretical);
                }
            }
        }
    }
    const auto stats = occupancyCacheStats();
    // regs 0 and 32 normalize to the same key: 3 blocks x 2 distinct
    // register budgets x 2 smem budgets.
    EXPECT_EQ(stats.entries, 12u);
    EXPECT_EQ(stats.misses, 12);
    EXPECT_EQ(stats.hits, 24); // the 0/32 aliases + the whole 2nd pass
    clearOccupancyCache();
    EXPECT_EQ(occupancyCacheStats().entries, 0u);
}

// ---------------------------------------------------------------------
// Adaptive-mapping invariants over a shape grid.
// ---------------------------------------------------------------------

struct ReduceShape
{
    std::int64_t rows;
    std::int64_t cols;
};

class AdaptiveMappingProperty
    : public ::testing::TestWithParam<ReduceShape>
{
};

TEST_P(AdaptiveMappingProperty, MappingIsAlwaysLaunchable)
{
    const auto [rows, cols] = GetParam();
    const AdaptiveMapping m = adaptiveRowReduce(kV100, rows, cols);
    EXPECT_GE(m.launch.grid, 1);
    EXPECT_GE(m.launch.block, kV100.warp_size);
    EXPECT_LE(m.launch.block, kV100.max_threads_per_block);
    const Occupancy occ = computeOccupancy(kV100, m.launch.block, 32, 0);
    EXPECT_GT(occ.blocks_per_sm, 0);
}

TEST_P(AdaptiveMappingProperty, CoversEveryRowExactly)
{
    const auto [rows, cols] = GetParam();
    const AdaptiveMapping m = adaptiveRowReduce(kV100, rows, cols);
    if (m.split_factor > 1) {
        EXPECT_EQ(m.launch.grid, rows * m.split_factor);
    } else {
        // rows_per_block * tasks_per_block * grid covers all rows.
        EXPECT_GE(m.rows_per_block * m.tasks_per_block * m.launch.grid,
                  rows);
        // ...but not egregiously more than one extra block's worth.
        EXPECT_LT(m.rows_per_block * m.tasks_per_block *
                      (m.launch.grid - 1),
                  rows + m.rows_per_block * m.tasks_per_block);
    }
}

TEST_P(AdaptiveMappingProperty, BeatsOrMatchesNaiveOccupancyScore)
{
    const auto [rows, cols] = GetParam();
    const AdaptiveMapping adaptive = adaptiveRowReduce(kV100, rows, cols);
    const LaunchDims naive = rowReduceMappingNaive(kV100, rows, cols);

    auto score = [&](const LaunchDims &launch) {
        const Occupancy occ =
            computeOccupancy(kV100, launch.block, 32, 0);
        if (occ.blocks_per_sm == 0)
            return 0.0;
        return achievedOccupancy(kV100, launch, occ) *
               smEfficiency(kV100, launch, occ);
    };
    // Vertical packing may shave a sliver of occupancy (a partially
    // filled final wave) in exchange for the barrier-legal grid bound;
    // allow that 2% while still catching real regressions.
    EXPECT_GE(score(adaptive.launch) + 0.02, score(naive));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, AdaptiveMappingProperty,
    ::testing::Values(ReduceShape{750000, 32}, ReduceShape{64, 30000},
                      ReduceShape{1, 1}, ReduceShape{1, 1000000},
                      ReduceShape{1000000, 1}, ReduceShape{4096, 1024},
                      ReduceShape{160, 1024}, ReduceShape{13, 77},
                      ReduceShape{100000, 7}, ReduceShape{33, 4097}));

// ---------------------------------------------------------------------
// Occupancy-calculator invariants over block sizes.
// ---------------------------------------------------------------------

class OccupancyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OccupancyProperty, ResidencyNeverExceedsHardLimits)
{
    const int block = GetParam();
    for (int regs : {16, 32, 64, 128}) {
        for (std::int64_t smem : {0L, 4096L, 16384L, 49152L}) {
            const Occupancy occ =
                computeOccupancy(kV100, block, regs, smem);
            if (occ.blocks_per_sm == 0)
                continue;
            EXPECT_LE(occ.blocks_per_sm * block,
                      kV100.max_threads_per_sm + kV100.warp_size);
            EXPECT_LE(occ.blocks_per_sm, kV100.max_blocks_per_sm);
            EXPECT_LE(static_cast<std::int64_t>(occ.blocks_per_sm) *
                          regs * ((block + 31) / 32 * 32),
                      kV100.regs_per_sm);
            if (smem > 0) {
                EXPECT_LE(occ.blocks_per_sm * smem,
                          kV100.smem_per_sm_bytes);
            }
            EXPECT_GT(occ.theoretical, 0.0);
            EXPECT_LE(occ.theoretical, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyProperty,
                         ::testing::Values(32, 64, 96, 128, 192, 256,
                                           384, 512, 768, 1024));

} // namespace
} // namespace astitch
