/**
 * @file
 * Tests of the CUDA source emitter.
 *
 * Two layers:
 *  - Golden-file regression: the full emitted text of one small Fig. 5
 *    workload per stitching scheme (regional / global) is pinned under
 *    tests/golden/. Any emitter change that alters the text shows up
 *    as a reviewable diff; regenerate deliberately with
 *    `ASTITCH_UPDATE_GOLDEN=1 ctest -R CudaEmitterGolden`.
 *  - Plan-coupled structure: properties that must track *computed* plan
 *    values (arena size, barrier counts, signature arity, launch stub)
 *    and so cannot be frozen into a golden file.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/cuda_static.h"
#include "core/cuda_emitter.h"
#include "support/strings.h"
#include "test_graphs.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

Cluster
soleCluster(const Graph &g)
{
    auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 1u);
    return clusters[0];
}

int
countOccurrences(const std::string &text, const std::string &needle)
{
    int count = 0;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

// ---------------------------------------------------------------------
// Golden-file regression.
// ---------------------------------------------------------------------

/**
 * Compare @p text against tests/golden/@p name byte for byte. With
 * ASTITCH_UPDATE_GOLDEN set in the environment the file is rewritten
 * instead — the diff then goes through review like any code change.
 */
void
expectMatchesGolden(const std::string &name, const std::string &text)
{
    const std::string path =
        std::string(ASTITCH_SOURCE_DIR) + "/tests/golden/" + name;
    if (std::getenv("ASTITCH_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with ASTITCH_UPDATE_GOLDEN=1";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), text)
        << "emitted CUDA drifted from " << path
        << " — if intentional, regenerate with ASTITCH_UPDATE_GOLDEN=1";
}

/** Fig. 5 with a reduce tail whose split schedule forces the add onto
 * the global stitching scheme (grid barrier in the emitted text). */
Graph
buildFig5Global()
{
    auto f = testing::buildFig5(8, 2048);
    GraphBuilder b(f.graph);
    f.graph.markOutput(b.reduceSum(f.add, {1}));
    return std::move(f.graph);
}

TEST(CudaEmitterGolden, Fig5RegionalMatchesGolden)
{
    auto f = testing::buildFig5(2, 128);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, soleCluster(f.graph), kV100);
    // Sanity before pinning: regional scheme only.
    EXPECT_GE(countOccurrences(emission.source, "__syncthreads();"), 1);
    EXPECT_EQ(emission.source.find("grid_barrier"), std::string::npos);
    expectMatchesGolden("fig5_regional.cu", emission.source);
}

TEST(CudaEmitterGolden, Fig5GlobalMatchesGolden)
{
    const Graph g = buildFig5Global();
    const CudaEmission emission =
        emitStitchKernelCuda(g, soleCluster(g), kV100);
    // Sanity before pinning: a global-scheme boundary and its helper.
    EXPECT_GE(countOccurrences(emission.source,
                               "grid_barrier(barrier_state"),
              1);
    EXPECT_EQ(countOccurrences(emission.source, "__device__ void"), 1);
    expectMatchesGolden("fig5_global.cu", emission.source);
}

TEST(CudaEmitterGolden, GoldenWorkloadsPassEmittedAnalysis)
{
    // The pinned texts must also hold up under the AS9xx analyzer —
    // a golden file is not allowed to freeze a defect.
    for (const bool global : {false, true}) {
        Graph g = global ? buildFig5Global()
                         : std::move(testing::buildFig5(2, 128).graph);
        const Cluster cluster = soleCluster(g);
        StitchDiagnostics diag;
        const CompiledCluster compiled = compileStitchOp(
            g, cluster, kV100, AStitchOptions{}, &diag);
        DiagnosticEngine engine;
        for (const KernelPlan &plan : compiled.kernels) {
            EXPECT_FALSE(plan.cuda_source.empty());
            EXPECT_TRUE(
                analyzeEmittedCuda(g, plan, kV100, engine))
                << engine.renderText();
        }
    }
}

// ---------------------------------------------------------------------
// Plan-coupled structure (cannot be frozen into a golden file).
// ---------------------------------------------------------------------

TEST(CudaEmitter, SharedArenaMatchesMemoryPlanner)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    StitchDiagnostics diag;
    compileStitchOp(f.graph, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    EXPECT_NE(emission.source.find(
                  strCat("__shared__ float smem[",
                         (diag.memory.smem_per_block + 3) / 4, "]")),
              std::string::npos);
}

TEST(CudaEmitter, EveryClusterOpAppears)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    // Each non-source op produces a value definition or reduce comment.
    for (NodeId id : cluster.nodes) {
        const std::string name = f.graph.node(id).name();
        std::string mangled = name;
        for (char &c : mangled) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        EXPECT_NE(emission.source.find("v_" + mangled),
                  std::string::npos)
            << name << " missing from emission";
    }
}

TEST(CudaEmitter, GridBarrierCountMatchesPlan)
{
    // The <64,30000> softmax stitches with split reduces -> global
    // scheme boundaries -> grid barriers.
    Graph g = testing::buildSoftmax(64, 30000);
    const Cluster cluster = soleCluster(g);
    StitchDiagnostics diag;
    const auto compiled =
        compileStitchOp(g, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission = emitStitchKernelCuda(g, cluster, kV100);
    const int barriers = compiled.kernels[0].num_global_barriers;
    ASSERT_GT(barriers, 0);
    EXPECT_EQ(countOccurrences(emission.source,
                               "grid_barrier(barrier_state"),
              barriers);
    // The helper is defined exactly once.
    EXPECT_EQ(countOccurrences(emission.source,
                               "__device__ void"),
              1);
}

TEST(CudaEmitter, SignatureListsInputsAndOutputs)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    EXPECT_EQ(countOccurrences(emission.source,
                               "const float *__restrict__"),
              static_cast<int>(cluster.inputs.size()));
    EXPECT_EQ(countOccurrences(emission.source, "_out"),
              2 * static_cast<int>(cluster.outputs.size()));
}

TEST(CudaEmitter, LaunchStubMatchesPlan)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    StitchDiagnostics diag;
    const auto compiled =
        compileStitchOp(f.graph, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    const KernelPlan &plan = compiled.kernels[0];
    EXPECT_NE(emission.launch_stub.find(strCat(
                  "<<<", plan.launch.grid, ", ", plan.launch.block)),
              std::string::npos);
    EXPECT_NE(emission.launch_stub.find(strCat(
                  "-maxrregcount=", plan.regs_per_thread)),
              std::string::npos);
}

} // namespace
} // namespace astitch
