/**
 * @file
 * Structural tests of the CUDA source emitter: the emitted kernel must
 * reflect the plan it was generated from — launch bounds, shared arena,
 * barrier counts, buffering per stitching scheme.
 */
#include <gtest/gtest.h>

#include "core/cuda_emitter.h"
#include "support/strings.h"
#include "test_graphs.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

Cluster
soleCluster(const Graph &g)
{
    auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 1u);
    return clusters[0];
}

int
countOccurrences(const std::string &text, const std::string &needle)
{
    int count = 0;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(CudaEmitter, EmitsAGlobalKernelWithLaunchBounds)
{
    auto f = testing::buildFig7();
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, soleCluster(f.graph), kV100);
    EXPECT_NE(emission.source.find("__global__ void"),
              std::string::npos);
    EXPECT_NE(emission.source.find("__launch_bounds__(1024"),
              std::string::npos);
    EXPECT_NE(emission.source.find(emission.kernel_name),
              std::string::npos);
}

TEST(CudaEmitter, SharedArenaMatchesMemoryPlanner)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    StitchDiagnostics diag;
    compileStitchOp(f.graph, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    EXPECT_NE(emission.source.find(
                  strCat("__shared__ float smem[",
                         (diag.memory.smem_per_block + 3) / 4, "]")),
              std::string::npos);
}

TEST(CudaEmitter, EveryClusterOpAppears)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    // Each non-source op produces a value definition or reduce comment.
    for (NodeId id : cluster.nodes) {
        const std::string name = f.graph.node(id).name();
        std::string mangled = name;
        for (char &c : mangled) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        EXPECT_NE(emission.source.find("v_" + mangled),
                  std::string::npos)
            << name << " missing from emission";
    }
}

TEST(CudaEmitter, GridBarrierCountMatchesPlan)
{
    // The <64,30000> softmax stitches with split reduces -> global
    // scheme boundaries -> grid barriers.
    Graph g = testing::buildSoftmax(64, 30000);
    const Cluster cluster = soleCluster(g);
    StitchDiagnostics diag;
    const auto compiled =
        compileStitchOp(g, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission = emitStitchKernelCuda(g, cluster, kV100);
    const int barriers = compiled.kernels[0].num_global_barriers;
    ASSERT_GT(barriers, 0);
    EXPECT_EQ(countOccurrences(emission.source,
                               "grid_barrier(barrier_state"),
              barriers);
    // The helper is defined exactly once.
    EXPECT_EQ(countOccurrences(emission.source,
                               "__device__ void"),
              1);
}

TEST(CudaEmitter, NoBarrierHelperWhenAllRegional)
{
    // A same-schedule softmax keeps everything regional: no grid
    // barriers, no helper, no barrier_state parameter.
    Graph g = testing::buildSoftmax(4096, 256);
    const CudaEmission emission =
        emitStitchKernelCuda(g, soleCluster(g), kV100);
    EXPECT_EQ(emission.source.find("grid_barrier"), std::string::npos);
    EXPECT_EQ(emission.source.find("barrier_state"), std::string::npos);
}

TEST(CudaEmitter, RegionalBoundariesSyncthreads)
{
    Graph g = testing::buildSoftmax(4096, 256);
    const CudaEmission emission =
        emitStitchKernelCuda(g, soleCluster(g), kV100);
    EXPECT_GE(countOccurrences(emission.source,
                               "__syncthreads(); // regional boundary"),
              2); // both reduce outputs are regional
}

TEST(CudaEmitter, SignatureListsInputsAndOutputs)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    EXPECT_EQ(countOccurrences(emission.source,
                               "const float *__restrict__"),
              static_cast<int>(cluster.inputs.size()));
    EXPECT_EQ(countOccurrences(emission.source, "_out"),
              2 * static_cast<int>(cluster.outputs.size()));
}

TEST(CudaEmitter, LaunchStubMatchesPlan)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    StitchDiagnostics diag;
    const auto compiled =
        compileStitchOp(f.graph, cluster, kV100, AStitchOptions{}, &diag);
    const CudaEmission emission =
        emitStitchKernelCuda(f.graph, cluster, kV100);
    const KernelPlan &plan = compiled.kernels[0];
    EXPECT_NE(emission.launch_stub.find(strCat(
                  "<<<", plan.launch.grid, ", ", plan.launch.block)),
              std::string::npos);
    EXPECT_NE(emission.launch_stub.find(strCat(
                  "-maxrregcount=", plan.regs_per_thread)),
              std::string::npos);
}

TEST(CudaEmitter, VerticalPackingLoopAppears)
{
    // The DIEN reduce packs 147 logical tasks per block.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({750000, 32});
    g.markOutput(b.reduceSum(b.mul(x, x), {1}));
    const CudaEmission emission =
        emitStitchKernelCuda(g, soleCluster(g), kV100);
    EXPECT_NE(emission.source.find("vertical packing x"),
              std::string::npos);
    EXPECT_NE(emission.source.find("task += gridDim.x"),
              std::string::npos);
}

TEST(CudaEmitter, ReduceLowersToColumnLoopAndBlockReduce)
{
    Graph g = testing::buildSoftmax(128, 512);
    const CudaEmission emission =
        emitStitchKernelCuda(g, soleCluster(g), kV100);
    EXPECT_GE(countOccurrences(emission.source, "blockReduce("), 2);
    EXPECT_GE(countOccurrences(emission.source, "c += blockDim.x"), 2);
    // Max-reduce initializes with -INFINITY, sum with 0.
    EXPECT_NE(emission.source.find("-INFINITY"), std::string::npos);
}

} // namespace
} // namespace astitch
