/**
 * @file
 * Unit tests for stitch-scope identification: memory-intensive cluster
 * discovery, frontier computation, acyclicity and remote stitching.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include "compiler/clustering.h"
#include "graph/graph_builder.h"
#include "graph/traversal.h"
#include "test_graphs.h"

namespace astitch {
namespace {

TEST(Clustering, SingleChainIsOneCluster)
{
    Graph g = testing::buildElementwiseChain(64, 3);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    // Constants and parameters are inputs, not members.
    for (NodeId n : clusters[0].nodes)
        EXPECT_FALSE(isSource(g.node(n).kind()));
}

TEST(Clustering, ComputeOpsDivideClusters)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId pre = b.tanh(x);                    // cluster 1
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(pre, w);
    NodeId post = b.sigmoid(mm);               // cluster 2
    g.markOutput(post);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_TRUE(clusters[0].contains(pre));
    EXPECT_TRUE(clusters[1].contains(post));
}

TEST(Clustering, FrontiersAreComputed)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId y = b.parameter({8});
    NodeId s = b.add(x, y);
    NodeId t = b.tanh(s);
    g.markOutput(t);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].inputs, (std::vector<NodeId>{x, y}));
    EXPECT_EQ(clusters[0].outputs, (std::vector<NodeId>{t}));
}

TEST(Clustering, InternalMultiUseIsNotAnOutput)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId a = b.neg(x);
    NodeId c = b.add(a, b.abs(a)); // `a` used twice, both internal
    g.markOutput(c);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].outputs, (std::vector<NodeId>{c}));
}

TEST(Clustering, CyclicComponentIsSplit)
{
    // a -> matmul -> c with a direct a -> c edge: the undirected
    // component {a, c} would deadlock against the matmul; it must split.
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({8, 8});
    NodeId a = b.neg(p);
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(a, w);
    NodeId c = b.add(a, mm);
    g.markOutput(c);

    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    for (const Cluster &cluster : clusters) {
        // No cluster may both feed and consume the matmul.
        const bool feeds = cluster.contains(a);
        const bool consumes = cluster.contains(c);
        EXPECT_FALSE(feeds && consumes);
    }
}

TEST(Clustering, DeepCyclicChainSplitsEverywhere)
{
    // mem -> matmul -> mem -> matmul -> mem with skip connections.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 4});
    NodeId m1 = b.neg(x);
    NodeId w = b.parameter({4, 4});
    NodeId mm1 = b.matmul(m1, w);
    NodeId m2 = b.add(m1, mm1);
    NodeId mm2 = b.matmul(m2, w);
    NodeId m3 = b.add(m2, mm2);
    g.markOutput(m3);
    const auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 3u);
    // Each split must keep the unit DAG acyclic: no cluster contains two
    // nodes with a compute op between them.
    for (const Cluster &c : clusters) {
        EXPECT_FALSE(c.contains(m1) && c.contains(m2));
        EXPECT_FALSE(c.contains(m2) && c.contains(m3));
    }
}

TEST(RemoteStitch, MergesIndependentClusters)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId y = b.parameter({8});
    NodeId c1 = b.tanh(x);
    NodeId c2 = b.sigmoid(y);
    g.markOutput(c1);
    g.markOutput(c2);
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    clusters = remoteStitch(g, std::move(clusters));
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_TRUE(clusters[0].contains(c1));
    EXPECT_TRUE(clusters[0].contains(c2));
}

TEST(RemoteStitch, RespectsDependencies)
{
    // cluster1 -> matmul -> cluster2: cannot merge.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId c1 = b.tanh(x);
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(c1, w);
    NodeId c2 = b.sigmoid(mm);
    g.markOutput(c2);
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    clusters = remoteStitch(g, std::move(clusters));
    EXPECT_EQ(clusters.size(), 2u);
}

TEST(RemoteStitch, MixedMergeKeepsDagAcyclic)
{
    // Three clusters: c1 -> mm -> c2, c3 independent. c3 can merge with
    // either but c1/c2 stay apart.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId c1 = b.tanh(x);
    NodeId w = b.parameter({8, 8});
    NodeId c2 = b.sigmoid(b.matmul(c1, w));
    NodeId c3 = b.abs(b.parameter({16}));
    g.markOutput(c2);
    g.markOutput(c3);
    auto clusters =
        remoteStitch(g, findMemoryIntensiveClusters(g));
    EXPECT_EQ(clusters.size(), 2u);
    // c1 and c2 must be in different clusters.
    int c1_cluster = -1, c2_cluster = -1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        if (clusters[i].contains(c1))
            c1_cluster = static_cast<int>(i);
        if (clusters[i].contains(c2))
            c2_cluster = static_cast<int>(i);
    }
    EXPECT_NE(c1_cluster, c2_cluster);
}

TEST(RemoteStitch, HonorsSizeBound)
{
    Graph g;
    GraphBuilder b(g);
    for (int i = 0; i < 4; ++i)
        g.markOutput(b.tanh(b.parameter({8})));
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 4u);
    auto merged = remoteStitch(g, clusters, /*max_cluster_nodes=*/2);
    EXPECT_EQ(merged.size(), 2u);
    for (const Cluster &c : merged)
        EXPECT_LE(c.nodes.size(), 2u);
}

TEST(RemoteStitch, Fig7StaysOneCluster)
{
    auto f = testing::buildFig7();
    auto clusters = findMemoryIntensiveClusters(f.graph);
    ASSERT_EQ(clusters.size(), 1u);
    auto merged = remoteStitch(f.graph, clusters);
    EXPECT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].nodes, clusters[0].nodes);
}

} // namespace
} // namespace astitch
