/**
 * @file
 * Unit tests for stitch-scope identification: memory-intensive cluster
 * discovery, frontier computation, acyclicity and remote stitching.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include "compiler/clustering.h"
#include "graph/graph_builder.h"
#include "graph/traversal.h"
#include "test_graphs.h"
#include "workloads/random_graph.h"

namespace astitch {
namespace {

bool
clustersEqual(const std::vector<Cluster> &a,
              const std::vector<Cluster> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].nodes != b[i].nodes || a[i].inputs != b[i].inputs ||
            a[i].outputs != b[i].outputs) {
            return false;
        }
    }
    return true;
}

TEST(Clustering, SingleChainIsOneCluster)
{
    Graph g = testing::buildElementwiseChain(64, 3);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    // Constants and parameters are inputs, not members.
    for (NodeId n : clusters[0].nodes)
        EXPECT_FALSE(isSource(g.node(n).kind()));
}

TEST(Clustering, ComputeOpsDivideClusters)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId pre = b.tanh(x);                    // cluster 1
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(pre, w);
    NodeId post = b.sigmoid(mm);               // cluster 2
    g.markOutput(post);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_TRUE(clusters[0].contains(pre));
    EXPECT_TRUE(clusters[1].contains(post));
}

TEST(Clustering, FrontiersAreComputed)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId y = b.parameter({8});
    NodeId s = b.add(x, y);
    NodeId t = b.tanh(s);
    g.markOutput(t);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].inputs, (std::vector<NodeId>{x, y}));
    EXPECT_EQ(clusters[0].outputs, (std::vector<NodeId>{t}));
}

TEST(Clustering, InternalMultiUseIsNotAnOutput)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId a = b.neg(x);
    NodeId c = b.add(a, b.abs(a)); // `a` used twice, both internal
    g.markOutput(c);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].outputs, (std::vector<NodeId>{c}));
}

TEST(Clustering, CyclicComponentIsSplit)
{
    // a -> matmul -> c with a direct a -> c edge: the undirected
    // component {a, c} would deadlock against the matmul; it must split.
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({8, 8});
    NodeId a = b.neg(p);
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(a, w);
    NodeId c = b.add(a, mm);
    g.markOutput(c);

    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    for (const Cluster &cluster : clusters) {
        // No cluster may both feed and consume the matmul.
        const bool feeds = cluster.contains(a);
        const bool consumes = cluster.contains(c);
        EXPECT_FALSE(feeds && consumes);
    }
}

TEST(Clustering, DeepCyclicChainSplitsEverywhere)
{
    // mem -> matmul -> mem -> matmul -> mem with skip connections.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 4});
    NodeId m1 = b.neg(x);
    NodeId w = b.parameter({4, 4});
    NodeId mm1 = b.matmul(m1, w);
    NodeId m2 = b.add(m1, mm1);
    NodeId mm2 = b.matmul(m2, w);
    NodeId m3 = b.add(m2, mm2);
    g.markOutput(m3);
    const auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 3u);
    // Each split must keep the unit DAG acyclic: no cluster contains two
    // nodes with a compute op between them.
    for (const Cluster &c : clusters) {
        EXPECT_FALSE(c.contains(m1) && c.contains(m2));
        EXPECT_FALSE(c.contains(m2) && c.contains(m3));
    }
}

TEST(RemoteStitch, MergesIndependentClusters)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8});
    NodeId y = b.parameter({8});
    NodeId c1 = b.tanh(x);
    NodeId c2 = b.sigmoid(y);
    g.markOutput(c1);
    g.markOutput(c2);
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    clusters = remoteStitch(g, std::move(clusters));
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_TRUE(clusters[0].contains(c1));
    EXPECT_TRUE(clusters[0].contains(c2));
}

TEST(RemoteStitch, RespectsDependencies)
{
    // cluster1 -> matmul -> cluster2: cannot merge.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId c1 = b.tanh(x);
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(c1, w);
    NodeId c2 = b.sigmoid(mm);
    g.markOutput(c2);
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 2u);
    clusters = remoteStitch(g, std::move(clusters));
    EXPECT_EQ(clusters.size(), 2u);
}

TEST(RemoteStitch, MixedMergeKeepsDagAcyclic)
{
    // Three clusters: c1 -> mm -> c2, c3 independent. c3 can merge with
    // either but c1/c2 stay apart.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({8, 8});
    NodeId c1 = b.tanh(x);
    NodeId w = b.parameter({8, 8});
    NodeId c2 = b.sigmoid(b.matmul(c1, w));
    NodeId c3 = b.abs(b.parameter({16}));
    g.markOutput(c2);
    g.markOutput(c3);
    auto clusters =
        remoteStitch(g, findMemoryIntensiveClusters(g));
    EXPECT_EQ(clusters.size(), 2u);
    // c1 and c2 must be in different clusters.
    int c1_cluster = -1, c2_cluster = -1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        if (clusters[i].contains(c1))
            c1_cluster = static_cast<int>(i);
        if (clusters[i].contains(c2))
            c2_cluster = static_cast<int>(i);
    }
    EXPECT_NE(c1_cluster, c2_cluster);
}

TEST(RemoteStitch, HonorsSizeBound)
{
    Graph g;
    GraphBuilder b(g);
    for (int i = 0; i < 4; ++i)
        g.markOutput(b.tanh(b.parameter({8})));
    auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 4u);
    auto merged = remoteStitch(g, clusters, /*max_cluster_nodes=*/2);
    EXPECT_EQ(merged.size(), 2u);
    for (const Cluster &c : merged)
        EXPECT_LE(c.nodes.size(), 2u);
}

TEST(Clustering, BitmapMembershipPathMatchesFrontierSemantics)
{
    // 100-node chain: makeCluster takes the stamped-bitmap membership
    // path (>= 64 members). Frontiers must still be exact.
    Graph g = testing::buildElementwiseChain(8, 100);
    const auto clusters = findMemoryIntensiveClusters(g);
    ASSERT_EQ(clusters.size(), 1u);
    const Cluster &c = clusters[0];
    ASSERT_GE(c.nodes.size(), 64u);
    for (NodeId in : c.inputs) {
        EXPECT_FALSE(c.contains(in));
        EXPECT_TRUE(isSource(g.node(in).kind()));
    }
    for (NodeId out : c.outputs) {
        EXPECT_TRUE(c.contains(out));
        bool escapes = g.isOutput(out);
        for (NodeId u : g.users(out))
            escapes |= !c.contains(u);
        EXPECT_TRUE(escapes);
    }
    // Interior chain nodes must not be outputs.
    EXPECT_EQ(c.outputs.size(), 1u);
}

TEST(Clustering, ScratchStatsTrackPeakAndDrainToZero)
{
    resetClusteringScratchStats();
    EXPECT_EQ(clusteringScratchStats().peak_bytes, 0u);
    Graph g = testing::buildElementwiseChain(8, 100);
    findMemoryIntensiveClusters(g);
    EXPECT_GT(clusteringScratchStats().peak_bytes, 0u);
    EXPECT_EQ(clusteringScratchStats().current_bytes, 0u);
}

TEST(ClusteringEquivalence, MatchesReferenceOnSeededRandomGraphs)
{
    for (std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
        for (int segment : {0, 50}) {
            workloads::RandomGraphConfig config;
            config.num_nodes = 400;
            config.seed = seed;
            config.max_dim = 32;
            config.matmul_probability = 0.1;
            config.segment_size = segment;
            const Graph g = workloads::buildRandomGraph(config);
            EXPECT_TRUE(
                clustersEqual(findMemoryIntensiveClusters(g),
                              findMemoryIntensiveClustersReference(g)))
                << "seed " << seed << " segment " << segment;
        }
    }
}

TEST(RemoteStitchEquivalence, MatchesReferenceAcrossBudgets)
{
    // Budget edge cases: 0 (unbounded), 1 (nothing fits with anything),
    // tiny budgets that reject most merges, and a budget larger than
    // the graph (equivalent to unbounded but through the guarded path).
    for (std::uint64_t seed : {3, 11, 29}) {
        workloads::RandomGraphConfig config;
        config.num_nodes = 500;
        config.seed = seed;
        config.max_dim = 32;
        config.matmul_probability = 0.1;
        config.segment_size = 40;
        const Graph g = workloads::buildRandomGraph(config);
        const auto clusters = findMemoryIntensiveClusters(g);
        for (int budget : {0, 1, 2, 3, 5, 8, 64, 1000000}) {
            EXPECT_TRUE(clustersEqual(
                remoteStitch(g, clusters, budget),
                remoteStitchReference(g, clusters, budget)))
                << "seed " << seed << " budget " << budget;
        }
    }
}

TEST(RemoteStitchEquivalence, FallsBackOnCyclicThroughExternalInput)
{
    // Violate remoteStitch's precondition on purpose: hand it a cluster
    // that reaches itself through an external matmul (splitCyclic would
    // have split it). The condensed graph is cyclic, so the optimized
    // path must detect that and still match the reference bit-for-bit.
    Graph g;
    GraphBuilder b(g);
    NodeId p = b.parameter({8, 8});
    NodeId a = b.neg(p);
    NodeId w = b.parameter({8, 8});
    NodeId mm = b.matmul(a, w);
    NodeId c = b.add(a, mm);
    NodeId d = b.abs(b.parameter({16}));
    g.markOutput(c);
    g.markOutput(d);

    std::vector<Cluster> clusters;
    clusters.push_back(makeCluster(g, {a, c})); // cyclic through mm
    clusters.push_back(makeCluster(g, {d}));
    for (int budget : {0, 2}) {
        EXPECT_TRUE(clustersEqual(
            remoteStitch(g, clusters, budget),
            remoteStitchReference(g, clusters, budget)))
            << "budget " << budget;
    }
}

TEST(RemoteStitch, Fig7StaysOneCluster)
{
    auto f = testing::buildFig7();
    auto clusters = findMemoryIntensiveClusters(f.graph);
    ASSERT_EQ(clusters.size(), 1u);
    auto merged = remoteStitch(f.graph, clusters);
    EXPECT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].nodes, clusters[0].nodes);
}

} // namespace
} // namespace astitch
