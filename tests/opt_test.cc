/**
 * @file
 * Unit tests for the graph optimization passes (the non-fusion XLA
 * optimizations AStitch retains), the rewriter, and the optimizer's
 * integration with the Session.
 */
#include <gtest/gtest.h>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "opt/passes.h"
#include "opt/rewriter.h"
#include "runtime/session.h"
#include "support/logging.h"
#include "workloads/common.h"
#include "workloads/random_graph.h"

namespace astitch {
namespace {

int
countKind(const Graph &g, OpKind kind)
{
    int count = 0;
    for (NodeId id = 0; id < g.numNodes(); ++id)
        count += g.node(id).kind() == kind;
    return count;
}

// ---------------------------------------------------------------------
// Rewriter
// ---------------------------------------------------------------------

TEST(Rewriter, CloneIsStructurallyIdentical)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.add(b.tanh(x), b.constantScalar(1.0f));
    g.markOutput(y);

    GraphRewriter rewriter(g);
    Graph clone;
    const auto mapping = rewriter.build(clone);
    ASSERT_EQ(clone.numNodes(), g.numNodes());
    for (NodeId id = 0; id < g.numNodes(); ++id) {
        EXPECT_EQ(clone.node(mapping.at(id)).kind(), g.node(id).kind());
        EXPECT_EQ(clone.node(mapping.at(id)).shape(), g.node(id).shape());
    }
    EXPECT_EQ(clone.outputs().size(), 1u);
}

TEST(Rewriter, ReplaceRedirectsUses)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId a = b.neg(x);
    NodeId dup = b.neg(x);
    NodeId sum = b.add(a, dup);
    g.markOutput(sum);

    GraphRewriter rewriter(g);
    rewriter.replaceWith(dup, a);
    Graph out;
    const auto mapping = rewriter.build(out);
    EXPECT_EQ(out.numNodes(), g.numNodes() - 1);
    const Node &new_sum = out.node(mapping.at(sum));
    EXPECT_EQ(new_sum.operands()[0], new_sum.operands()[1]);
}

TEST(Rewriter, DroppingAnOutputWithoutReplacementIsFatal)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.neg(x);
    g.markOutput(y);
    GraphRewriter rewriter(g);
    rewriter.drop(y);
    Graph out;
    EXPECT_THROW(rewriter.build(out), FatalError);
}

// ---------------------------------------------------------------------
// Individual passes
// ---------------------------------------------------------------------

TEST(Dce, RemovesUnreachableNodes)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId live = b.tanh(x);
    b.mul(b.neg(x), b.constantScalar(2.0f)); // dead chain
    g.markOutput(live);

    DeadCodeElimination dce;
    Graph out;
    const int removed = dce.run(g, out);
    EXPECT_EQ(removed, 3); // neg, constant, mul
    EXPECT_EQ(out.numNodes(), 2);
}

TEST(Dce, KeepsUnusedParameters)
{
    Graph g;
    GraphBuilder b(g);
    b.parameter({4}, "unused");
    NodeId x = b.parameter({4});
    g.markOutput(b.neg(x));

    DeadCodeElimination dce;
    Graph out;
    dce.run(g, out);
    EXPECT_EQ(out.parameters().size(), 2u);
}

TEST(Cse, MergesIdenticalSubtrees)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId a = b.tanh(x);
    NodeId c = b.tanh(x); // duplicate
    g.markOutput(b.add(a, c));

    CommonSubexpressionElimination cse;
    Graph out;
    EXPECT_EQ(cse.run(g, out), 1);
    EXPECT_EQ(countKind(out, OpKind::Tanh), 1);
}

TEST(Cse, CollapsesChainsInOneSweep)
{
    // Two structurally-identical deep chains merge entirely.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId c1 = b.exp(b.neg(b.tanh(x)));
    NodeId c2 = b.exp(b.neg(b.tanh(x)));
    g.markOutput(b.add(c1, c2));

    CommonSubexpressionElimination cse;
    Graph out;
    EXPECT_EQ(cse.run(g, out), 3);
    EXPECT_EQ(countKind(out, OpKind::Exp), 1);
    EXPECT_EQ(countKind(out, OpKind::Neg), 1);
}

TEST(Cse, DistinguishesDifferentAttrs)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 4});
    NodeId r0 = b.reduceSum(x, {0});
    NodeId r1 = b.reduceSum(x, {1});
    g.markOutput(b.add(r0, r1));

    CommonSubexpressionElimination cse;
    Graph out;
    EXPECT_EQ(cse.run(g, out), 0);
}

TEST(Cse, MergesEqualConstants)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.mul(b.add(x, b.constantScalar(0.5f)),
                     b.constantScalar(0.5f));
    g.markOutput(y);

    CommonSubexpressionElimination cse;
    Graph out;
    EXPECT_EQ(cse.run(g, out), 1);
    EXPECT_EQ(countKind(out, OpKind::Constant), 1);
}

TEST(ConstantFold, FoldsConstantSubtree)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId k = b.mul(b.constantScalar(3.0f), b.constantScalar(4.0f));
    g.markOutput(b.mul(x, k));

    ConstantFolding fold;
    Graph out;
    EXPECT_GT(fold.run(g, out), 0);
    // The folded 12.0 constant feeds the surviving mul.
    bool found = false;
    for (NodeId id = 0; id < out.numNodes(); ++id) {
        const Node &n = out.node(id);
        if (n.kind() == OpKind::Constant &&
            n.attrs().literal.numElements() == 1 &&
            n.attrs().literal.at(0) == 12.0f) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(countKind(out, OpKind::Mul), 1);
}

TEST(ConstantFold, RespectsSizeLimit)
{
    Graph g;
    GraphBuilder b(g);
    NodeId big = b.constant(Tensor::full({1024}, 1.0f));
    NodeId doubled = b.mul(big, b.constantScalar(2.0f));
    g.markOutput(doubled);

    ConstantFolding fold(/*max_elements=*/16);
    Graph out;
    EXPECT_EQ(fold.run(g, out), 0);
    EXPECT_EQ(countKind(out, OpKind::Mul), 1);
}

TEST(ConstantFold, PreservesValues)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({3});
    NodeId k = b.exp(b.constantScalar(1.0f));
    NodeId y = b.add(x, b.broadcastTo(k, {3}));
    g.markOutput(y);

    const TensorMap feeds{{x, Tensor(Shape{3}, {1, 2, 3})}};
    const auto before = Evaluator(g).run(feeds);

    ConstantFolding fold;
    Graph out;
    fold.run(g, out);
    TensorMap out_feeds{{out.parameters()[0], feeds.at(x)}};
    const auto after = Evaluator(out).run(out_feeds);
    EXPECT_TRUE(after[0].allClose(before[0]));
}

TEST(Algebraic, RemovesIdentities)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    NodeId y = b.add(x, b.constantScalar(0.0f));   // x + 0
    y = b.mul(y, b.constantScalar(1.0f));          // * 1
    y = b.div(y, b.constantScalar(1.0f));          // / 1
    y = b.sub(y, b.constantScalar(0.0f));          // - 0
    y = b.neg(b.neg(y));                           // neg(neg)
    g.markOutput(y);

    AlgebraicSimplification simplify;
    Graph out;
    // The four binary identities are replaced; the two negs survive:
    // the inner is no identity itself, the outer is the graph output
    // (outputs are part of the signature and never replaced).
    EXPECT_EQ(simplify.run(g, out), 4);
    DeadCodeElimination dce;
    Graph cleaned;
    dce.run(out, cleaned);
    // param + inner neg + outer neg (output).
    EXPECT_EQ(cleaned.numNodes(), 3);
}

TEST(Algebraic, PowerOfOneAndIdentityMovement)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4, 4});
    NodeId y = b.power(x, 1.0);
    y = b.reshape(y, {4, 4});      // same-shape reshape
    y = b.broadcastTo(y, {4, 4});  // same-shape broadcast
    y = b.transpose(y, {0, 1});    // identity perm
    g.markOutput(y);

    AlgebraicSimplification simplify;
    Graph out;
    // power/reshape/broadcast fold; the final transpose is the output
    // node and survives as the (identity) result producer.
    EXPECT_EQ(simplify.run(g, out), 3);
    EXPECT_EQ(out.numNodes(), 2);
    EXPECT_EQ(out.node(out.outputs()[0]).kind(), OpKind::Transpose);
}

TEST(Algebraic, DoesNotTouchRealWork)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    g.markOutput(b.mul(x, b.constantScalar(2.0f)));
    AlgebraicSimplification simplify;
    Graph out;
    EXPECT_EQ(simplify.run(g, out), 0);
}

TEST(Algebraic, ShapeChangingIdentityIsKept)
{
    // x(scalar) + 0[broadcast 4] changes shape — must not be removed.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({});
    NodeId zeros = b.constant(Tensor::full({4}, 0.0f));
    g.markOutput(b.add(x, zeros));
    AlgebraicSimplification simplify;
    Graph out;
    EXPECT_EQ(simplify.run(g, out), 0);
}

// ---------------------------------------------------------------------
// Pipeline + Session integration
// ---------------------------------------------------------------------

TEST(Pipeline, RunsToFixpoint)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({4});
    // mul(x, 1*1) needs fold -> simplify -> dce to fully clean.
    NodeId one = b.mul(b.constantScalar(1.0f), b.constantScalar(1.0f));
    NodeId y = b.mul(x, b.broadcastTo(one, {4}));
    b.tanh(b.constantScalar(5.0f)); // dead + foldable
    g.markOutput(y);

    PassPipeline pipeline = PassPipeline::standard();
    Graph out = pipeline.run(g);
    EXPECT_FALSE(pipeline.statistics().empty());
    // Everything folds away except the parameter, the surviving output
    // op and its (folded) constant operand.
    EXPECT_LE(out.numNodes(), 3);
    EXPECT_EQ(out.outputs().size(), 1u);
}

TEST(Pipeline, GeluConstantsGetDeduplicated)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({16});
    NodeId y = b.gelu(b.gelu(x)); // two gelus share four constants
    g.markOutput(y);
    const int constants_before = countKind(g, OpKind::Constant);

    PassPipeline pipeline = PassPipeline::standard();
    Graph out = pipeline.run(g);
    EXPECT_LT(countKind(out, OpKind::Constant), constants_before);
}

TEST(SessionOptimizer, ValuesUnchangedAcrossBackends)
{
    workloads::RandomGraphConfig config;
    config.num_nodes = 120;
    config.seed = 77;
    config.max_dim = 12;
    const Graph g = workloads::buildRandomGraph(config);
    const TensorMap feeds = workloads::makeRandomFeeds(g);
    const auto expected = Evaluator(g).run(feeds);

    SessionOptions options;
    options.enable_optimizer = true;
    for (int which = 0; which < 2; ++which) {
        std::unique_ptr<Backend> backend;
        if (which == 0)
            backend = std::make_unique<XlaBackend>();
        else
            backend = std::make_unique<AStitchBackend>();
        Session session(g, std::move(backend), options);
        const RunReport report = session.run(feeds);
        ASSERT_EQ(report.outputs.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(
                report.outputs[i].allClose(expected[i], 1e-4, 1e-5))
                << report.backend_name << " output " << i;
        }
    }
}

TEST(SessionOptimizer, ShrinksTheActiveGraph)
{
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({64});
    // Duplicate chains + dead code give the optimizer work.
    NodeId a = b.exp(b.tanh(x));
    NodeId c = b.exp(b.tanh(x));
    b.neg(b.constantScalar(3.0f)); // dead
    g.markOutput(b.add(a, c));

    SessionOptions options;
    options.enable_optimizer = true;
    Session session(g, std::make_unique<XlaBackend>(), options);
    session.compile();
    EXPECT_LT(session.activeGraph().numNodes(), g.numNodes());
}

TEST(SessionOptimizer, OptimizerNeverSlowsExecution)
{
    const Graph g = workloads::buildRandomGraph(
        workloads::RandomGraphConfig{300, 5, 0.1, 0.15, 0.5, 0.02, 2,
                                     32});
    SessionOptions plain;
    SessionOptions optimized;
    optimized.enable_optimizer = true;
    Session s1(g, std::make_unique<AStitchBackend>(), plain);
    Session s2(g, std::make_unique<AStitchBackend>(), optimized);
    EXPECT_LE(s2.profile().end_to_end_us,
              s1.profile().end_to_end_us * 1.05);
}

} // namespace
} // namespace astitch
