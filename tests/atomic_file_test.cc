/**
 * @file
 * Tests of the shared crash-safe file primitives: checksums, atomic
 * publish, quarantine, orphan temp files and the advisory inter-process
 * file lock (support/atomic_file.h).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <string>

#include <unistd.h>

#include "support/atomic_file.h"

namespace astitch {
namespace {

std::string
tmpPath(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "astitch_atomic_" + name;
    ::unlink(path.c_str());
    ::unlink((path + ".bad").c_str());
    return path;
}

TEST(Checksum64, SensitiveToEveryByte)
{
    const std::string base = "the quick brown fox";
    const std::uint64_t want = checksum64(base);
    EXPECT_EQ(checksum64(base), want); // stable
    EXPECT_EQ(checksum64(base.data(), base.size()), want);
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::string flipped = base;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
        EXPECT_NE(checksum64(flipped), want) << "flip at " << i;
    }
    EXPECT_NE(checksum64(std::string()), checksum64(std::string(1, '\0')));
}

TEST(AtomicFile, MissingFileIsAbsentNotError)
{
    std::string out = "sentinel";
    EXPECT_EQ(readFileBytes(tmpPath("missing"), &out),
              FileReadStatus::Absent);
    EXPECT_TRUE(out.empty());
}

TEST(AtomicFile, WriteReadRoundTripIncludingBinary)
{
    const std::string path = tmpPath("roundtrip");
    std::string bytes = "header";
    bytes.push_back('\0');
    bytes += "\x01\xff tail";
    ASSERT_TRUE(atomicWriteFile(path, bytes));

    std::string out;
    ASSERT_EQ(readFileBytes(path, &out), FileReadStatus::Ok);
    EXPECT_EQ(out, bytes);

    // Overwrite publishes the new content whole.
    ASSERT_TRUE(atomicWriteFile(path, "v2"));
    ASSERT_EQ(readFileBytes(path, &out), FileReadStatus::Ok);
    EXPECT_EQ(out, "v2");

    // The temp sibling must not survive a successful publish.
    std::string tmp_probe;
    EXPECT_EQ(readFileBytes(path + ".tmp." +
                                std::to_string(::getpid()),
                            &tmp_probe),
              FileReadStatus::Absent);
}

TEST(AtomicFile, OrphanTempNeverShadowsThePath)
{
    const std::string path = tmpPath("orphan");
    // A process that died between temp-write and rename leaves exactly
    // this: garbage under a .tmp.<pid> name, nothing at the real path.
    {
        std::ofstream orphan(path + ".tmp.424242", std::ios::binary);
        orphan << "half-written garbage";
    }
    std::string out;
    EXPECT_EQ(readFileBytes(path, &out), FileReadStatus::Absent);

    // The next publish is unaffected by the orphan.
    ASSERT_TRUE(atomicWriteFile(path, "fresh"));
    ASSERT_EQ(readFileBytes(path, &out), FileReadStatus::Ok);
    EXPECT_EQ(out, "fresh");
    ::unlink((path + ".tmp.424242").c_str());
}

TEST(AtomicFile, QuarantineMovesEvidenceAside)
{
    const std::string path = tmpPath("quarantine");
    ASSERT_TRUE(atomicWriteFile(path, "corrupt-evidence"));

    const std::string bad = quarantineFile(path);
    EXPECT_EQ(bad, path + ".bad");

    // The original is gone (a fresh publish sees a clean miss), the
    // sidecar holds the untouched evidence.
    std::string out;
    EXPECT_EQ(readFileBytes(path, &out), FileReadStatus::Absent);
    ASSERT_EQ(readFileBytes(bad, &out), FileReadStatus::Ok);
    EXPECT_EQ(out, "corrupt-evidence");

    // Quarantining a missing file reports failure without throwing.
    EXPECT_EQ(quarantineFile(path), "");
}

TEST(FileLock, ExcludesSecondHolderUntilRelease)
{
    const std::string path = tmpPath("lock");
    auto first = std::make_unique<FileLock>(path, 1000.0);
    ASSERT_TRUE(first->locked());

    // flock is per open-file-description, so a second open in the same
    // process contends exactly like another process would.
    {
        FileLock second(path, 60.0);
        EXPECT_FALSE(second.locked());
    }

    first.reset(); // release
    FileLock third(path, 60.0);
    EXPECT_TRUE(third.locked());
}

TEST(FileLock, TimeoutIsBounded)
{
    const std::string path = tmpPath("lock_timeout");
    FileLock holder(path, 1000.0);
    ASSERT_TRUE(holder.locked());

    const auto start = std::chrono::steady_clock::now();
    FileLock waiter(path, 100.0);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(waiter.locked());
    EXPECT_GE(elapsed_ms, 90.0);
    EXPECT_LT(elapsed_ms, 5000.0);
}

} // namespace
} // namespace astitch
