/**
 * @file
 * Cost-model-guided autotuner tests: determinism across thread counts,
 * candidate legality through the analyzer gate, tuning-DB round-trip /
 * versioning / corruption handling, and cost monotonicity (tuned never
 * worse than heuristic) over a random-graph corpus.
 */
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "compiler/clustering.h"
#include "compiler/fingerprint.h"
#include "core/astitch_backend.h"
#include "opt/autotuner.h"
#include "opt/tuning_db.h"
#include "runtime/session.h"
#include "test_graphs.h"
#include "workloads/common.h"
#include "workloads/random_graph.h"

namespace astitch {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "astitch_autotuner_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    std::ostringstream out;
    out << file.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    file << content;
}

bool
sameDecision(const TuningOverrides &a, const TuningOverrides &b)
{
    return a.schemes == b.schemes && a.mappings == b.mappings;
}

SessionOptions
tunedOptions(TuningMode mode = TuningMode::Seeded, int candidates = 24)
{
    SessionOptions options;
    options.tuning.mode = mode;
    options.tuning.max_candidates = candidates;
    return options;
}

// ---------------------------------------------------------------------
// Determinism: same seed + budget => bit-identical decisions, costs and
// plans, regardless of how many compile threads the session uses.
// ---------------------------------------------------------------------

TEST(AutotunerDeterminism, IdenticalAcrossThreadCounts)
{
    const Graph graph = workloads::inferenceWorkloads()[3].build(); // ASR
    std::vector<TuningReport> reports;
    std::vector<std::string> launches;
    for (int threads : {1, 4}) {
        SessionOptions options = tunedOptions();
        options.compile_threads = threads;
        Session session(graph, std::make_unique<AStitchBackend>(),
                        options);
        session.compile();
        reports.push_back(session.tuningReport());
        std::string all;
        for (const CompiledCluster &c : session.compiled())
            for (const KernelPlan &plan : c.kernels)
                all += plan.name + ":" + plan.launch.toString() + "\n";
        launches.push_back(all);
    }

    ASSERT_EQ(reports[0].clusters.size(), reports[1].clusters.size());
    for (std::size_t i = 0; i < reports[0].clusters.size(); ++i) {
        const ClusterTuningResult &a = reports[0].clusters[i];
        const ClusterTuningResult &b = reports[1].clusters[i];
        EXPECT_EQ(a.fingerprint, b.fingerprint) << "cluster " << i;
        EXPECT_EQ(a.heuristic_cost_us, b.heuristic_cost_us)
            << "cluster " << i;
        EXPECT_EQ(a.tuned_cost_us, b.tuned_cost_us) << "cluster " << i;
        EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated)
            << "cluster " << i;
        EXPECT_EQ(a.improved, b.improved) << "cluster " << i;
        EXPECT_TRUE(sameDecision(a.decision, b.decision))
            << "cluster " << i;
    }
    EXPECT_EQ(launches[0], launches[1]);
}

TEST(AutotunerDeterminism, SameSeedTwiceIsIdentical)
{
    const testing::Fig7Graph f = testing::buildFig7(512, 256);
    const auto clusters =
        remoteStitch(f.graph, findMemoryIntensiveClusters(f.graph));
    ASSERT_FALSE(clusters.empty());
    const GpuSpec spec = GpuSpec::v100();
    const AStitchOptions base;
    const CompiledCluster heuristic =
        compileStitchOp(f.graph, clusters[0], spec, base);

    TuningOptions options;
    options.mode = TuningMode::Full;
    options.max_candidates = 32;
    const AutotuneOutcome first = autotuneCluster(
        f.graph, clusters[0], spec, base, heuristic, options);
    const AutotuneOutcome second = autotuneCluster(
        f.graph, clusters[0], spec, base, heuristic, options);
    EXPECT_EQ(first.result.tuned_cost_us, second.result.tuned_cost_us);
    EXPECT_EQ(first.result.candidates_evaluated,
              second.result.candidates_evaluated);
    EXPECT_TRUE(
        sameDecision(first.result.decision, second.result.decision));
}

// ---------------------------------------------------------------------
// Legality: every candidate the tuner scores passed the analyzer gate,
// and an independent analyzer run agrees with the gate's verdict.
// ---------------------------------------------------------------------

TEST(AutotunerLegality, ScoredCandidatesPassAnalyzerGate)
{
    const testing::Fig7Graph f = testing::buildFig7(512, 512);
    const auto clusters =
        remoteStitch(f.graph, findMemoryIntensiveClusters(f.graph));
    ASSERT_FALSE(clusters.empty());
    const GpuSpec spec = GpuSpec::v100();
    const AStitchOptions base;
    const CompiledCluster heuristic =
        compileStitchOp(f.graph, clusters[0], spec, base);

    std::atomic<int> observed{0}, legal_count{0};
    TuningOptions options;
    options.mode = TuningMode::Seeded;
    options.max_candidates = 32;
    options.observer = [&](const TuningOverrides &, const CompiledCluster
                           &compiled, bool legal, double cost_us) {
        ++observed;
        if (!legal)
            return;
        ++legal_count;
        EXPECT_GT(cost_us, 0.0);
        DiagnosticEngine engine;
        EXPECT_TRUE(analyzeCompiledCluster(f.graph, clusters[0], compiled,
                                           spec, engine))
            << engine.renderText();
    };
    const AutotuneOutcome outcome = autotuneCluster(
        f.graph, clusters[0], spec, base, heuristic, options);
    EXPECT_GT(observed.load(), 0);
    EXPECT_GT(legal_count.load(), 0);
    EXPECT_EQ(outcome.result.candidates_evaluated, observed.load());

    // The adopted plan itself re-verifies clean.
    DiagnosticEngine engine;
    EXPECT_TRUE(analyzeCompiledCluster(f.graph, clusters[0],
                                       outcome.compiled, spec, engine))
        << engine.renderText();
}

// ---------------------------------------------------------------------
// Tuning DB: round-trip, snapshot isolation, versioning, corruption.
// ---------------------------------------------------------------------

TuningDbEntry
sampleEntry(const std::string &key)
{
    TuningDbEntry entry;
    entry.key = key;
    entry.heuristic_cost_us = 12.5;
    entry.tuned_cost_us = 10.25;
    entry.improved = true;
    entry.schemes.push_back({3, 3});
    entry.schemes.push_back({7, 2});
    entry.mappings.push_back({1, 256, 0});
    entry.mappings.push_back({5, 0, 4});
    return entry;
}

TEST(TuningDbTest, RoundTripThroughDisk)
{
    const std::string path = tempPath("roundtrip.json");
    std::remove(path.c_str());
    const std::string key = TuningDb::makeKey(0xabcdef12345ULL,
                                              "V100-SXM2-16GB", "tag");
    {
        TuningDb db(path);
        EXPECT_EQ(db.lookup(key), nullptr); // snapshot empty
        db.record(sampleEntry(key));
        // Snapshot isolation: recording does not affect lookups.
        EXPECT_EQ(db.lookup(key), nullptr);
        EXPECT_EQ(db.stats().pending, 1u);
        EXPECT_TRUE(db.save());
    }
    TuningDb db(path);
    const TuningDbEntry *entry = db.lookup(key);
    ASSERT_NE(entry, nullptr);
    EXPECT_DOUBLE_EQ(entry->heuristic_cost_us, 12.5);
    EXPECT_DOUBLE_EQ(entry->tuned_cost_us, 10.25);
    EXPECT_TRUE(entry->improved);
    ASSERT_EQ(entry->schemes.size(), 2u);
    EXPECT_EQ(entry->schemes[1].node, 7);
    EXPECT_EQ(entry->schemes[1].scheme, 2);
    ASSERT_EQ(entry->mappings.size(), 2u);
    EXPECT_EQ(entry->mappings[0].block, 256);
    EXPECT_EQ(entry->mappings[1].split, 4);
    EXPECT_EQ(db.stats().hits, 1);
    std::remove(path.c_str());
}

TEST(TuningDbTest, StalePassVersionMisses)
{
    const std::string path = tempPath("stale.json");
    std::remove(path.c_str());
    const std::string key = TuningDb::makeKey(42, "T4", "tag");
    {
        TuningDb db(path);
        db.record(sampleEntry(key));
        ASSERT_TRUE(db.save());
    }
    // Simulate a DB written by an older pass version: same file format,
    // older version suffix in every key.
    std::string text = readFile(path);
    const std::string current =
        "|v" + std::to_string(TuningDb::kPassVersion);
    const std::size_t at = text.find(current);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, current.size(), "|v0");
    writeFile(path, text);

    TuningDb db(path);
    EXPECT_FALSE(db.stats().load_failed); // well-formed, just stale
    EXPECT_EQ(db.lookup(key), nullptr);   // current-version key misses
    EXPECT_EQ(db.stats().misses, 1);
    std::remove(path.c_str());
}

TEST(TuningDbTest, CorruptFileDegradesToEmpty)
{
    const std::string path = tempPath("corrupt.json");
    writeFile(path, "this is not { json ]["); // parse must fail
    TuningDb db(path);
    EXPECT_TRUE(db.stats().load_failed);
    EXPECT_EQ(db.stats().entries, 0u);
    EXPECT_EQ(db.lookup(TuningDb::makeKey(1, "A100", "t")), nullptr);

    // Retuning after the corruption still persists fresh results.
    const std::string key = TuningDb::makeKey(1, "A100", "t");
    db.record(sampleEntry(key));
    EXPECT_TRUE(db.save());
    TuningDb reloaded(path);
    EXPECT_FALSE(reloaded.stats().load_failed);
    EXPECT_NE(reloaded.lookup(key), nullptr);
    std::remove(path.c_str());
}

TEST(TuningDbTest, WrongFileVersionDegradesToEmpty)
{
    const std::string path = tempPath("filever.json");
    writeFile(path, "{\"version\": 9999, \"entries\": []}\n");
    TuningDb db(path);
    EXPECT_TRUE(db.stats().load_failed);
    EXPECT_EQ(db.stats().entries, 0u);
    std::remove(path.c_str());
}

TEST(TuningDbTest, InMemoryWithoutPath)
{
    TuningDb db;
    const std::string key = TuningDb::makeKey(7, "V100", "t");
    db.record(sampleEntry(key));
    EXPECT_TRUE(db.save()); // no disk involved
    EXPECT_EQ(db.stats().pending, 0u);
    EXPECT_NE(db.lookup(key), nullptr);
}

TEST(TuningDbTest, SessionReusesDbAcrossRuns)
{
    const std::string path = tempPath("session.json");
    std::remove(path.c_str());
    const testing::Fig7Graph f = testing::buildFig7(512, 256);

    SessionOptions options = tunedOptions();
    options.tuning.db_path = path;
    int first_candidates = 0;
    {
        Session session(f.graph, std::make_unique<AStitchBackend>(),
                        options);
        session.compile();
        const TuningReport &report = session.tuningReport();
        ASSERT_TRUE(report.enabled);
        ASSERT_FALSE(report.clusters.empty());
        EXPECT_EQ(report.dbHitCount(), 0);
        for (const ClusterTuningResult &r : report.clusters)
            first_candidates += r.candidates_evaluated;
        EXPECT_GT(first_candidates, 0);
    }
    {
        Session session(f.graph, std::make_unique<AStitchBackend>(),
                        options);
        session.compile();
        const TuningReport &report = session.tuningReport();
        EXPECT_GT(report.dbHitCount(), 0);
        int candidates = 0;
        for (const ClusterTuningResult &r : report.clusters)
            candidates += r.candidates_evaluated;
        // A DB hit replays the stored decision: at most one verifying
        // compile per cluster instead of a whole search.
        EXPECT_LE(candidates,
                  static_cast<int>(report.clusters.size()));
        EXPECT_LT(candidates, first_candidates);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Monotonicity: the tuner keeps the heuristic plan unless a candidate
// is strictly cheaper, so tuned cost <= heuristic cost always.
// ---------------------------------------------------------------------

TEST(AutotunerMonotonicity, TunedNeverWorseOnRandomCorpus)
{
    for (std::uint64_t seed : {11u, 23u, 47u}) {
        workloads::RandomGraphConfig config;
        config.num_nodes = 160;
        config.seed = seed;
        config.segment_size = 40;
        const Graph graph = workloads::buildRandomGraph(config);

        Session session(graph, std::make_unique<AStitchBackend>(),
                        tunedOptions(TuningMode::Seeded, 16));
        const RunReport report = session.profile();
        ASSERT_TRUE(report.tuning.enabled) << "seed " << seed;
        for (std::size_t i = 0; i < report.tuning.clusters.size(); ++i) {
            const ClusterTuningResult &r = report.tuning.clusters[i];
            EXPECT_LE(r.tuned_cost_us, r.heuristic_cost_us)
                << "seed " << seed << " cluster " << i;
            if (r.improved) {
                EXPECT_LT(r.tuned_cost_us, r.heuristic_cost_us)
                    << "seed " << seed << " cluster " << i;
            }
        }
    }
}

TEST(AutotunerMonotonicity, OffModeReportsDisabled)
{
    const testing::Fig7Graph f = testing::buildFig7();
    Session session(f.graph, std::make_unique<AStitchBackend>());
    const RunReport report = session.profile();
    EXPECT_FALSE(report.tuning.enabled);
    EXPECT_EQ(report.pass_timings.autotune_ms, 0.0);
}

} // namespace
} // namespace astitch
