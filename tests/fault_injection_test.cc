/**
 * @file
 * Unit tests of the deterministic fault-injection subsystem: plan
 * parsing, transient/permanent firing semantics, scope stacking, the
 * thread-local shield and the idle fast path.
 */
#include <gtest/gtest.h>

#include "support/fault_injection.h"
#include "support/logging.h"

namespace astitch {
namespace {

TEST(FaultInjection, RegistryIsSortedAndLookupWorks)
{
    const auto &sites = faultSites();
    ASSERT_FALSE(sites.empty());
    for (std::size_t i = 1; i < sites.size(); ++i)
        EXPECT_LT(std::string(sites[i - 1].name), sites[i].name);
    for (const FaultSite &site : sites) {
        const FaultSite *found = findFaultSite(site.name);
        ASSERT_NE(found, nullptr);
        EXPECT_STREQ(found->name, site.name);
    }
    EXPECT_EQ(findFaultSite("no-such-site"), nullptr);
}

TEST(FaultInjection, EmptyAndBlankPlansAreEmpty)
{
    EXPECT_TRUE(FaultPlan().empty());
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse(",,").empty());
}

TEST(FaultInjection, ParseRejectsUnknownSiteAndBadValues)
{
    EXPECT_THROW(FaultPlan::parse("no-such-site"), FatalError);
    EXPECT_THROW(FaultPlan::parse("codegen:0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("codegen:-1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("codegen~0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("codegen~1.5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("codegen:abc"), FatalError);
    EXPECT_THROW(FaultPlan::parse(":3"), FatalError);
}

TEST(FaultInjection, PermanentFiresOnEveryHit)
{
    const FaultPlan plan = FaultPlan::parse("codegen");
    for (int i = 0; i < 3; ++i) {
        try {
            plan.check("codegen");
            FAIL() << "expected a PermanentFault";
        } catch (const PermanentFault &e) {
            EXPECT_EQ(e.site(), "codegen");
            EXPECT_FALSE(e.transient());
        }
    }
    // Other sites never fire.
    EXPECT_NO_THROW(plan.check("memory-planner"));
}

TEST(FaultInjection, TransientClearsAfterCount)
{
    const FaultPlan plan = FaultPlan::parse("memory-planner:2");
    EXPECT_THROW(plan.check("memory-planner"), TransientFault);
    EXPECT_THROW(plan.check("memory-planner"), TransientFault);
    EXPECT_NO_THROW(plan.check("memory-planner"));
    EXPECT_NO_THROW(plan.check("memory-planner"));
}

TEST(FaultInjection, TransientIsAlsoAnInjectedFault)
{
    const FaultPlan plan = FaultPlan::parse("clustering:1");
    try {
        plan.check("clustering");
        FAIL() << "expected a TransientFault";
    } catch (const InjectedFault &e) {
        EXPECT_TRUE(e.transient());
        EXPECT_EQ(e.site(), "clustering");
    }
}

TEST(FaultInjection, ProbabilityGateIsSeedDeterministic)
{
    // Two plans with the same seed must fire on exactly the same hits.
    auto pattern = [](const FaultPlan &plan) {
        std::string fired;
        for (int i = 0; i < 64; ++i) {
            try {
                plan.check("codegen");
                fired += '.';
            } catch (const InjectedFault &) {
                fired += 'X';
            }
        }
        return fired;
    };
    const std::string a = pattern(FaultPlan::parse("codegen~0.5@42"));
    const std::string b = pattern(FaultPlan::parse("codegen~0.5@42"));
    const std::string c = pattern(FaultPlan::parse("codegen~0.5@43"));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c) << "different seeds produced an identical pattern";
    EXPECT_NE(a.find('X'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjection, SummaryRoundTripsTheSpec)
{
    EXPECT_EQ(FaultPlan().summary(), "<no faults>");
    EXPECT_EQ(FaultPlan::parse("codegen:2,clustering").summary(),
              "codegen:2,clustering");
}

TEST(FaultInjection, FaultPointFiresOnlyInsideScope)
{
    EXPECT_NO_THROW(faultPoint("codegen"));
    {
        FaultScope scope(FaultPlan::parse("codegen"));
        EXPECT_FALSE(faultInjectionIdle());
        EXPECT_THROW(faultPoint("codegen"), PermanentFault);
        EXPECT_NO_THROW(faultPoint("memory-planner"));
    }
    EXPECT_TRUE(faultInjectionIdle());
    EXPECT_NO_THROW(faultPoint("codegen"));
}

TEST(FaultInjection, ScopesStack)
{
    FaultScope outer(FaultPlan::parse("codegen"));
    {
        FaultScope inner(FaultPlan::parse("memory-planner"));
        EXPECT_THROW(faultPoint("codegen"), PermanentFault);
        EXPECT_THROW(faultPoint("memory-planner"), PermanentFault);
    }
    EXPECT_THROW(faultPoint("codegen"), PermanentFault);
    EXPECT_NO_THROW(faultPoint("memory-planner"));
}

TEST(FaultInjection, ShieldSuppressesInjection)
{
    FaultScope scope(FaultPlan::parse("codegen"));
    {
        FaultShield shield;
        EXPECT_NO_THROW(faultPoint("codegen"));
    }
    EXPECT_THROW(faultPoint("codegen"), PermanentFault);
}

TEST(FaultInjection, UnregisteredFaultPointPanicsWhenActive)
{
    FaultScope scope(FaultPlan::parse("codegen"));
    EXPECT_THROW(faultPoint("not-a-site"), PanicError);
}

TEST(FaultInjection, EmptyScopeInstallsNothing)
{
    FaultScope scope(FaultPlan{});
    EXPECT_TRUE(faultInjectionIdle());
    EXPECT_NO_THROW(faultPoint("codegen"));
}

} // namespace
} // namespace astitch
