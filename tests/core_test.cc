/**
 * @file
 * Unit tests for the AStitch core: dominant analysis, adaptive thread
 * mapping, schedule propagation, locality check, memory planner, launch
 * configuration and the stitch code generator.
 */
#include <gtest/gtest.h>

#include "support/logging.h"

#include <set>

#include "core/astitch_backend.h"
#include "test_graphs.h"

namespace astitch {
namespace {

const GpuSpec kV100 = GpuSpec::v100();

Cluster
soleCluster(const Graph &g)
{
    auto clusters = findMemoryIntensiveClusters(g);
    EXPECT_EQ(clusters.size(), 1u);
    return clusters[0];
}

// ---------------------------------------------------------------------
// Dominant analysis
// ---------------------------------------------------------------------

TEST(DominantAnalysis, Fig7CandidatesIncludeBothPatterns)
{
    auto f = testing::buildFig7();
    const auto analysis =
        analyzeDominants(f.graph, soleCluster(f.graph), true);
    const std::set<NodeId> candidates(analysis.candidates.begin(),
                                      analysis.candidates.end());
    EXPECT_TRUE(candidates.count(f.reduce1));
    EXPECT_TRUE(candidates.count(f.reduce2));
    EXPECT_TRUE(candidates.count(f.power1)) << "heavy ew + broadcast";
    EXPECT_TRUE(candidates.count(f.multiply1)) << "cluster output";
}

TEST(DominantAnalysis, ReducesAnchorSeparateGroups)
{
    auto f = testing::buildFig7();
    const auto analysis =
        analyzeDominants(f.graph, soleCluster(f.graph), true);
    EXPECT_EQ(analysis.groups.size(), 2u);
    std::set<NodeId> dominants;
    for (const auto &g : analysis.groups)
        dominants.insert(g.dominant);
    EXPECT_TRUE(dominants.count(f.reduce1));
    EXPECT_TRUE(dominants.count(f.reduce2));
}

TEST(DominantAnalysis, NonReduceCandidatesBecomeSubDominants)
{
    auto f = testing::buildFig7();
    const auto analysis =
        analyzeDominants(f.graph, soleCluster(f.graph), true);
    EXPECT_TRUE(analysis.isSchemeBoundary(f.power1));
    EXPECT_TRUE(analysis.isSchemeBoundary(f.multiply1));
    // power1/multiply1 are sub-dominants, never final dominants.
    for (const auto &g : analysis.groups) {
        EXPECT_NE(g.dominant, f.power1);
        EXPECT_NE(g.dominant, f.multiply1);
    }
}

TEST(DominantAnalysis, MergedGroupsPartitionTheCluster)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const auto analysis = analyzeDominants(f.graph, cluster, true);
    std::set<NodeId> seen;
    for (const auto &g : analysis.groups) {
        for (NodeId n : g.members) {
            EXPECT_TRUE(seen.insert(n).second)
                << "node in two groups under merging";
        }
    }
    EXPECT_EQ(seen.size(), cluster.nodes.size());
}

TEST(DominantAnalysis, UnmergedDuplicatesSharedRegions)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const auto merged = analyzeDominants(f.graph, cluster, true);
    const auto unmerged = analyzeDominants(f.graph, cluster, false);
    EXPECT_GT(unmerged.groups.size(), merged.groups.size());
    // Some node must now belong to more than one group.
    bool duplicated = false;
    for (const auto &[node, groups] : unmerged.groups_of_node)
        duplicated |= groups.size() > 1;
    EXPECT_TRUE(duplicated);
}

TEST(DominantAnalysis, PureElementwiseClusterHasOneGroup)
{
    Graph g = testing::buildElementwiseChain(256, 4);
    const auto analysis = analyzeDominants(g, soleCluster(g), true);
    EXPECT_EQ(analysis.groups.size(), 1u);
    EXPECT_FALSE(
        isReduce(g.node(analysis.groups[0].dominant).kind()));
}

TEST(DominantAnalysis, SoftmaxHasTwoReduceGroups)
{
    Graph g = testing::buildSoftmax(8, 64);
    const auto analysis = analyzeDominants(g, soleCluster(g), true);
    int reduce_groups = 0;
    for (const auto &grp : analysis.groups)
        reduce_groups += isReduce(g.node(grp.dominant).kind());
    EXPECT_EQ(reduce_groups, 2);
}

// ---------------------------------------------------------------------
// Adaptive thread mapping (Sec 3.3)
// ---------------------------------------------------------------------

TEST(AdaptiveMapping, HorizontalPackingFixesTinyRows)
{
    // Fig. 8-(a): <750000,32> packs 32 rows into 1024-thread blocks and
    // vertically packs the grid into one wave.
    const AdaptiveMapping m = adaptiveRowReduce(kV100, 750000, 32);
    EXPECT_EQ(m.launch.block, 1024);
    EXPECT_EQ(m.rows_per_block, 32);
    EXPECT_FALSE(m.uses_atomics);
    const std::int64_t bpw = blocksPerWaveFor(kV100, 1024, 8 * 1024);
    EXPECT_LE(m.launch.grid, bpw);
    EXPECT_GT(m.tasks_per_block, 1);
}

TEST(AdaptiveMapping, TaskSplittingFixesSmallBlockCount)
{
    // Fig. 8-(b): <64,30000> splits each row across blocks with atomics.
    const AdaptiveMapping m = adaptiveRowReduce(kV100, 64, 30000);
    EXPECT_GT(m.split_factor, 1);
    EXPECT_TRUE(m.uses_atomics);
    EXPECT_GT(m.launch.grid, 64);
    EXPECT_EQ(m.launch.grid, 64 * m.split_factor);
}

TEST(AdaptiveMapping, RegularShapesNeedNoTricks)
{
    const AdaptiveMapping m = adaptiveRowReduce(kV100, 4096, 1024);
    EXPECT_EQ(m.split_factor, 1);
    EXPECT_FALSE(m.uses_atomics);
    EXPECT_EQ(m.launch.block, 1024);
}

TEST(AdaptiveMapping, ElementwiseGridCappedToWave)
{
    const AdaptiveMapping m = adaptiveElementwise(kV100, 100'000'000);
    const std::int64_t bpw = blocksPerWaveFor(kV100, 256, 0);
    EXPECT_LE(m.launch.grid, bpw);
    EXPECT_GT(m.tasks_per_block, 1);
}

TEST(AdaptiveMapping, ColumnReduceUsesAtomics)
{
    const AdaptiveMapping m = adaptiveColumnReduce(kV100, 1024, 64);
    EXPECT_TRUE(m.uses_atomics);
}

TEST(AdaptiveMapping, DegenerateReduceIsFatal)
{
    EXPECT_THROW(adaptiveRowReduce(kV100, 0, 32), FatalError);
}

// ---------------------------------------------------------------------
// Schedule propagation + locality
// ---------------------------------------------------------------------

TEST(SchedulePropagation, ReduceGroupsGetReduceMappings)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const auto analysis = analyzeDominants(f.graph, cluster, true);
    const auto schedules =
        computeGroupSchedules(f.graph, cluster, analysis, kV100, true);
    ASSERT_EQ(schedules.size(), analysis.groups.size());
    for (std::size_t g = 0; g < schedules.size(); ++g) {
        EXPECT_EQ(schedules[g].is_reduce_group,
                  isReduce(f.graph.node(analysis.groups[g].dominant)
                               .kind()));
    }
}

TEST(SchedulePropagation, ElementwiseGroupAdoptsProducerMapping)
{
    // reduce feeding an elementwise output group: the consumer group
    // proactively adapts to the producer's launch.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({512, 256});
    NodeId r = b.reduceSum(x, {1});
    NodeId out = b.mul(b.tanh(r), b.constantScalar(2.0f));
    g.markOutput(out);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    // All ops claimed by the reduce group here: just assert no crash and
    // reduce mapping present.
    bool has_reduce_group = false;
    for (const auto &s : schedules)
        has_reduce_group |= s.is_reduce_group;
    EXPECT_TRUE(has_reduce_group);
}

TEST(LocalityCheck, SameScheduleYieldsRegional)
{
    // Softmax: both reduces share the same row partitioning, so the
    // reduce outputs can live in shared memory.
    Graph g = testing::buildSoftmax(4096, 256);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    const auto schemes =
        finalizeSchemes(g, cluster, analysis, schedules);
    int regional = 0;
    for (const auto &[node, scheme] : schemes)
        regional += scheme == StitchScheme::Regional;
    EXPECT_GE(regional, 2);
}

TEST(LocalityCheck, SplitReduceFallsToGlobal)
{
    // <64,30000> forces task splitting -> atomics -> Global scheme.
    Graph g = testing::buildSoftmax(64, 30000);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    const auto schemes =
        finalizeSchemes(g, cluster, analysis, schedules);
    int global = 0;
    for (const auto &[node, scheme] : schemes)
        global += scheme == StitchScheme::Global;
    EXPECT_GE(global, 1);
}

// ---------------------------------------------------------------------
// Memory planner (Sec 4.4)
// ---------------------------------------------------------------------

TEST(MemoryPlanner, RegionalBuffersFitDefaultBudget)
{
    Graph g = testing::buildSoftmax(4096, 256);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    auto schemes = finalizeSchemes(g, cluster, analysis, schedules);
    const MemoryPlan plan = planMemory(g, cluster, analysis, schedules,
                                       schemes, kV100);
    EXPECT_LE(plan.smem_per_block, kV100.smem_per_block_bytes);
    EXPECT_EQ(plan.num_demoted, 0);
}

TEST(MemoryPlanner, TightBudgetDemotesRegionalToGlobal)
{
    Graph g = testing::buildSoftmax(4096, 256);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    auto schemes = finalizeSchemes(g, cluster, analysis, schedules);
    const std::int64_t scratch_only = 1024 * 4 + 4;
    const MemoryPlan plan = planMemory(g, cluster, analysis, schedules,
                                       schemes, kV100, scratch_only);
    EXPECT_GT(plan.num_demoted, 0);
    EXPECT_LE(plan.smem_per_block, scratch_only);
    // Demoted reduce buffers show up as global scratch.
    EXPECT_GT(plan.global_scratch_bytes, 0);
}

TEST(MemoryPlanner, ImpossibleBudgetIsFatal)
{
    Graph g = testing::buildSoftmax(64, 256);
    const Cluster cluster = soleCluster(g);
    const auto analysis = analyzeDominants(g, cluster, true);
    const auto schedules =
        computeGroupSchedules(g, cluster, analysis, kV100, true);
    auto schemes = finalizeSchemes(g, cluster, analysis, schedules);
    EXPECT_THROW(planMemory(g, cluster, analysis, schedules, schemes,
                            kV100, 16),
                 FatalError);
}

// ---------------------------------------------------------------------
// Launch configuration (Sec 4.5)
// ---------------------------------------------------------------------

TEST(LaunchConfig, RelaxesRegistersWhenSmemBound)
{
    // 256-thread blocks with 48KB smem: residency is smem-bound at
    // 2 blocks/SM (threads would allow 8), so the register bound relaxes
    // from the assumed 32 up to 128 without losing residency.
    const LaunchConfig config =
        configureLaunch(kV100, 100, 256, 48 * 1024, true);
    EXPECT_EQ(config.regs_per_thread, 128);
    EXPECT_EQ(config.blocks_per_wave, 160);
}

TEST(LaunchConfig, ThreadBoundConfigsCannotRelax)
{
    // Full 1024-thread blocks fill the SM at 2 blocks: every register in
    // the file is already budgeted (65536 / 2048 = 32 per thread).
    const LaunchConfig config =
        configureLaunch(kV100, 100, 1024, 16 * 1024, true);
    EXPECT_EQ(config.regs_per_thread, 32);
}

TEST(LaunchConfig, KeepsAssumedRegsWhenRegisterBound)
{
    // No smem: 2 blocks of 1024 threads need regs <= 32 per thread to
    // keep both resident.
    const LaunchConfig config =
        configureLaunch(kV100, 100, 1024, 0, true);
    EXPECT_EQ(config.regs_per_thread, 32);
}

TEST(LaunchConfig, GlobalBarrierCapsGridToOneWave)
{
    const LaunchConfig config =
        configureLaunch(kV100, 10000, 1024, 0, true);
    EXPECT_LE(config.launch.grid, config.blocks_per_wave);
    EXPECT_GT(config.grid_packing, 1);

    const LaunchConfig uncapped =
        configureLaunch(kV100, 10000, 1024, 0, false);
    EXPECT_EQ(uncapped.launch.grid, 10000);
}

// ---------------------------------------------------------------------
// Stitch codegen end-to-end
// ---------------------------------------------------------------------

TEST(StitchCodegen, Fig7CompilesToOneKernel)
{
    auto f = testing::buildFig7();
    StitchDiagnostics diag;
    const auto compiled = compileStitchOp(
        f.graph, soleCluster(f.graph), kV100, AStitchOptions{}, &diag);
    ASSERT_EQ(compiled.kernels.size(), 1u);
    const KernelPlan &k = compiled.kernels[0];
    // Every cluster node scheduled exactly once.
    EXPECT_EQ(k.ops.size(), soleCluster(f.graph).nodes.size());
    // The output is written to framework memory.
    bool found_output = false;
    for (const auto &op : k.ops) {
        if (op.node == f.multiply1) {
            EXPECT_EQ(op.out_space, BufferSpace::Output);
            found_output = true;
        }
        EXPECT_DOUBLE_EQ(op.recompute_factor, 1.0)
            << "hierarchical reuse forbids recomputation";
    }
    EXPECT_TRUE(found_output);
}

TEST(StitchCodegen, SchemesMatchPaperStory)
{
    // reduce.1's consumers share its partitioning -> Regional; power.1
    // crosses into the other group -> Regional only if partitionings
    // align, and at least one boundary must be buffered on-chip or in
    // global scratch.
    auto f = testing::buildFig7();
    StitchDiagnostics diag;
    compileStitchOp(f.graph, soleCluster(f.graph), kV100,
                    AStitchOptions{}, &diag);
    ASSERT_TRUE(diag.memory.schemes.count(f.reduce1));
    ASSERT_TRUE(diag.memory.schemes.count(f.power1));
    EXPECT_EQ(diag.memory.schemes.at(f.reduce1), StitchScheme::Regional);
}

TEST(StitchCodegen, GlobalBarrierLegality)
{
    // Any stitched kernel with global barriers must fit one wave — the
    // cost model would refuse it otherwise, so pricing must succeed.
    Graph g = testing::buildSoftmax(64, 30000);
    const auto compiled = compileStitchOp(
        g, soleCluster(g), kV100, AStitchOptions{});
    ASSERT_EQ(compiled.kernels.size(), 1u);
    const CostModel model(kV100);
    EXPECT_NO_THROW(model.priceKernel(workDescFor(g, compiled.kernels[0])));
}

TEST(StitchCodegen, InputLoadFactorReflectsGroupCount)
{
    auto f = testing::buildFig7();
    const Cluster cluster = soleCluster(f.graph);
    const auto merged =
        compileStitchOp(f.graph, cluster, kV100, AStitchOptions{});
    AStitchOptions no_merge = AStitchBackend::withoutMerging();
    const auto unmerged =
        compileStitchOp(f.graph, cluster, kV100, no_merge);
    double merged_reads =
        workDescFor(f.graph, merged.kernels[0]).bytes_read;
    double unmerged_reads =
        workDescFor(f.graph, unmerged.kernels[0]).bytes_read;
    EXPECT_GE(unmerged_reads, merged_reads);
}

TEST(AStitchBackend, AblationNamesAndModes)
{
    EXPECT_EQ(AStitchBackend().name(), "astitch");
    EXPECT_EQ(AStitchBackend(AStitchBackend::atmOnly()).name(),
              "astitch-atm");
    EXPECT_EQ(AStitchBackend(AStitchBackend::withoutMerging()).name(),
              "astitch-hdm");
    EXPECT_TRUE(AStitchBackend().wantsRemoteStitching());
    EXPECT_FALSE(AStitchBackend(AStitchBackend::atmOnly())
                     .wantsRemoteStitching());
}

TEST(AStitchBackend, AtmModeKeepsXlaScopesWithAdaptiveMapping)
{
    // ATM mode: multiple kernels (XLA scopes) but improved mapping on the
    // DIEN shape.
    Graph g;
    GraphBuilder b(g);
    NodeId x = b.parameter({750000, 32});
    NodeId r = b.reduceSum(b.mul(x, x), {1});
    g.markOutput(r);
    AStitchBackend atm(AStitchBackend::atmOnly());
    const auto compiled =
        atm.compileCluster(g, soleCluster(g), kV100);
    ASSERT_GE(compiled.kernels.size(), 1u);
    for (const auto &k : compiled.kernels) {
        if (k.containsNode(r)) {
            EXPECT_GE(k.launch.block, 256) << "adaptive mapping expected";
        }
    }
}

TEST(AStitchBackend, FullPipelineReducesKernelCountVsXla)
{
    auto f = testing::buildFig7();
    AStitchBackend astitch;
    const auto stitched =
        astitch.compileCluster(f.graph, soleCluster(f.graph), kV100);
    EXPECT_EQ(stitched.kernels.size(), 1u);
}

} // namespace
} // namespace astitch
