/**
 * @file
 * Registry <-> documentation drift test.
 *
 * DESIGN.md section 6 carries the diagnostic-code table users and CI
 * consumers read; the registry in analysis/diagnostics.cc is what the
 * engine enforces. The two rot independently unless a test pins them
 * together: every registered code must be documented (directly or via
 * a range row like "AS001–AS009") with the registered severity, and
 * every documented code must exist in the registry.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"

namespace astitch {
namespace {

std::string
trim(const std::string &s)
{
    const std::size_t a = s.find_first_not_of(" \t");
    if (a == std::string::npos)
        return "";
    const std::size_t b = s.find_last_not_of(" \t");
    return s.substr(a, b - a + 1);
}

/** One documented table row: a single code or an inclusive range. */
struct DocRow
{
    std::string lo;       ///< e.g. "AS001"
    std::string hi;       ///< equal to lo for single-code rows
    std::string severity; ///< "Error" / "Warning" / "Note"
    bool covers(const std::string &code) const
    {
        return lo <= code && code <= hi;
    }
};

/**
 * Parse the AS-code rows out of DESIGN.md: lines shaped
 * "| AS101 | Error | ... |" or "| AS001–AS009 | Error | ... |" (both
 * the en-dash and a plain dash split a range).
 */
std::vector<DocRow>
parseDesignTable(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<DocRow> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("| AS", 0) != 0)
            continue;
        // Split the row into cells.
        std::vector<std::string> cells;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, '|'))
            cells.push_back(trim(cell));
        // cells[0] is the empty prefix before the leading '|'.
        if (cells.size() < 3)
            continue;
        std::string codes = cells[1];
        // Normalize the UTF-8 en-dash to '-'.
        const std::string en_dash = "\xE2\x80\x93";
        for (std::size_t at = codes.find(en_dash);
             at != std::string::npos; at = codes.find(en_dash))
            codes.replace(at, en_dash.size(), "-");
        DocRow row;
        const std::size_t dash = codes.find('-');
        if (dash == std::string::npos) {
            row.lo = row.hi = codes;
        } else {
            row.lo = trim(codes.substr(0, dash));
            row.hi = trim(codes.substr(dash + 1));
        }
        row.severity = cells[2];
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string
capitalizedSeverity(Severity severity)
{
    std::string name = severityName(severity);
    if (!name.empty())
        name[0] = static_cast<char>(std::toupper(name[0]));
    return name;
}

const char *kDesignPath = ASTITCH_SOURCE_DIR "/DESIGN.md";

TEST(DocsDrift, EveryRegisteredCodeIsDocumentedWithItsSeverity)
{
    const std::vector<DocRow> rows = parseDesignTable(kDesignPath);
    ASSERT_FALSE(rows.empty());
    for (const DiagnosticCode &code : diagnosticCodes()) {
        const DocRow *doc = nullptr;
        for (const DocRow &row : rows) {
            if (row.covers(code.code)) {
                doc = &row;
                break;
            }
        }
        ASSERT_NE(doc, nullptr)
            << code.code << " (" << code.title
            << ") is registered but missing from the DESIGN.md table";
        EXPECT_EQ(doc->severity, capitalizedSeverity(code.severity))
            << code.code << " severity drifted between registry and "
            << "DESIGN.md";
    }
}

TEST(DocsDrift, EveryDocumentedCodeIsRegistered)
{
    const std::vector<DocRow> rows = parseDesignTable(kDesignPath);
    ASSERT_FALSE(rows.empty());
    for (const DocRow &row : rows) {
        EXPECT_NE(findDiagnosticCode(row.lo), nullptr)
            << row.lo << " documented in DESIGN.md but not registered";
        EXPECT_NE(findDiagnosticCode(row.hi), nullptr)
            << row.hi << " documented in DESIGN.md but not registered";
        // A range must not promise codes the registry skips: every
        // registered code inside it exists by construction, but the
        // endpoints anchor the range to real entries (checked above).
        EXPECT_EQ(familyOf(row.lo), familyOf(row.hi))
            << "range " << row.lo << "-" << row.hi
            << " spans families; document families separately";
    }
}

TEST(DocsDrift, NoDuplicateDocumentation)
{
    const std::vector<DocRow> rows = parseDesignTable(kDesignPath);
    for (const DiagnosticCode &code : diagnosticCodes()) {
        int covered = 0;
        for (const DocRow &row : rows)
            covered += row.covers(code.code) ? 1 : 0;
        EXPECT_LE(covered, 1)
            << code.code << " is documented by more than one table row";
    }
}

} // namespace
} // namespace astitch
