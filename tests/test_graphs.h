/**
 * @file
 * Shared test graphs, including a rendition of the paper's Fig. 7-(a)
 * memory-intensive subgraph and the Fig. 5 redundancy case.
 */
#ifndef ASTITCH_TESTS_TEST_GRAPHS_H
#define ASTITCH_TESTS_TEST_GRAPHS_H

#include "graph/graph_builder.h"

namespace astitch {
namespace testing {

/** Node handles of the Fig. 7-(a)-style graph. */
struct Fig7Graph
{
    Graph graph{"fig7"};
    NodeId param1 = kInvalidNodeId;   // [rows, cols] input
    NodeId param2 = kInvalidNodeId;   // [rows] vector input
    NodeId add1 = kInvalidNodeId;
    NodeId reduce1 = kInvalidNodeId;  // row-reduce, regional in the paper
    NodeId divide1 = kInvalidNodeId;
    NodeId power1 = kInvalidNodeId;   // heavy ew + broadcast, global
    NodeId reduce2 = kInvalidNodeId;  // global
    NodeId multiply1 = kInvalidNodeId; // output
};

/**
 * Build the Fig. 7-(a)-style subgraph:
 *
 *   add.1 = param1 + param1
 *   reduce.1 = row_sum(add.1)                   (reduce -> consumers)
 *   divide.1 = add.1 / broadcast(reduce.1)
 *   power.1 = pow(param2, 2)                    (heavy ew -> broadcast)
 *   add.2   = divide.1 + broadcast(power.1)
 *   reduce.2 = row_sum(add.2)
 *   multiply.1 = reduce.2 * power.1             (graph output)
 */
inline Fig7Graph
buildFig7(std::int64_t rows = 64, std::int64_t cols = 128)
{
    Fig7Graph f;
    GraphBuilder b(f.graph);
    const Shape wide{rows, cols};

    f.param1 = b.parameter(wide, "param1");
    f.param2 = b.parameter({rows, 1}, "param2");

    f.add1 = b.add(f.param1, f.param1);
    f.reduce1 = b.reduceSum(f.add1, {1});
    NodeId r1_col = b.reshape(f.reduce1, {rows, 1});
    f.divide1 = b.div(f.add1, b.broadcastTo(r1_col, wide));

    f.power1 = b.power(f.param2, 2.0);
    NodeId add2 = b.add(f.divide1, b.broadcastTo(f.power1, wide));
    f.reduce2 = b.reduceSum(add2, {1});
    f.multiply1 = b.mul(f.reduce2, b.reshape(f.power1, {rows}));
    b.output(f.multiply1);
    return f;
}

/** Fig. 5: power<r,1> -> broadcast<r,c> -> add<r,c>. */
struct Fig5Graph
{
    Graph graph{"fig5"};
    NodeId vec = kInvalidNodeId;
    NodeId wide = kInvalidNodeId;
    NodeId power = kInvalidNodeId;
    NodeId add = kInvalidNodeId;
};

inline Fig5Graph
buildFig5(std::int64_t rows = 2, std::int64_t cols = 128)
{
    Fig5Graph f;
    GraphBuilder b(f.graph);
    f.vec = b.parameter({rows, 1}, "vec");
    f.wide = b.parameter({rows, cols}, "wide");
    f.power = b.power(f.vec, 2.0);
    NodeId bc = b.broadcastTo(f.power, {rows, cols});
    f.add = b.add(bc, f.wide);
    f.graph.markOutput(f.add);
    return f;
}

/** A pure element-wise chain (single-kernel everywhere). */
inline Graph
buildElementwiseChain(std::int64_t n = 1024, int depth = 4)
{
    Graph graph("chain");
    GraphBuilder b(graph);
    NodeId x = b.parameter({n});
    for (int i = 0; i < depth; ++i)
        x = b.add(b.mul(x, b.constantScalar(1.5f)),
                  b.constantScalar(0.25f));
    graph.markOutput(x);
    return graph;
}

/** Softmax over [rows, cols] (two reduces + broadcasts). */
inline Graph
buildSoftmax(std::int64_t rows, std::int64_t cols)
{
    Graph graph("softmax");
    GraphBuilder b(graph);
    NodeId x = b.parameter({rows, cols});
    graph.markOutput(b.softmax(x));
    return graph;
}

} // namespace testing
} // namespace astitch

#endif // ASTITCH_TESTS_TEST_GRAPHS_H
