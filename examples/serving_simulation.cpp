/**
 * @file
 * Online-serving simulation: variable request shapes stream through a
 * DynamicSession (the dynamic-shape story of the authors' follow-on
 * BladeDISC work), with power-of-two bucketing bounding the number of
 * JIT compilations, and a chrome://tracing dump of one request's
 * simulated timeline.
 *
 *   $ ./serving_simulation
 */
#include <cstdio>
#include <fstream>

#include "core/astitch_backend.h"
#include "runtime/dynamic_session.h"
#include "sim/trace_export.h"
#include "support/rng.h"
#include "workloads/bert.h"

using namespace astitch;

int
main()
{
    // A BERT encoder whose batch size varies per request.
    GraphTemplate bert_template =
        [](const std::vector<std::int64_t> &dims) {
            workloads::BertConfig config =
                workloads::BertConfig::inference();
            config.batch = static_cast<int>(dims.at(0));
            return workloads::buildBert(config);
        };
    BackendFactory backend = [] {
        return std::make_unique<AStitchBackend>();
    };

    DynamicSessionOptions exact_options;
    DynamicSession exact(bert_template, backend, exact_options);

    DynamicSessionOptions bucketed_options;
    bucketed_options.bucket_to_power_of_two = true;
    DynamicSession bucketed(bert_template, backend, bucketed_options);

    // 32 requests with production-like batch variation.
    Rng rng(2026);
    double exact_total = 0.0, bucketed_total = 0.0;
    std::printf("serving 32 requests with batch in [8, 200]...\n");
    for (int request = 0; request < 32; ++request) {
        const std::int64_t batch = rng.uniformInt(8, 200);
        exact_total += exact.profile({batch}).end_to_end_us;
        bucketed_total += bucketed.profile({batch}).end_to_end_us;
    }
    std::printf("  exact shapes:    %2d compilations, total %8.2f ms\n",
                exact.numCompiledBuckets(), exact_total / 1000.0);
    std::printf("  pow2 bucketing:  %2d compilations, total %8.2f ms "
                "(padding overhead %.1f%%)\n",
                bucketed.numCompiledBuckets(),
                bucketed_total / 1000.0,
                100.0 * (bucketed_total / exact_total - 1.0));

    // Dump one request's simulated timeline for chrome://tracing.
    const RunReport report = exact.profile({64});
    std::ofstream trace("/tmp/astitch_bert_trace.json");
    trace << toChromeTrace(report.counters);
    std::printf("\nwrote chrome trace of a batch-64 request to "
                "/tmp/astitch_bert_trace.json (%zu kernels)\n",
                report.counters.kernels.size());
    return 0;
}
