/**
 * @file
 * Irregular-tensor-shape walkthrough (Sec 2.3.2 / 3.3): sweeps a grid of
 * row-reduce shapes and prints, for each, the naive XLA mapping, the
 * Ansor-tuned mapping and the AStitch adaptive mapping with their
 * modelled occupancy — reproducing the Fig. 6 pathologies and the
 * Fig. 8 fixes interactively.
 *
 *   $ ./irregular_shapes
 */
#include <cstdio>
#include <vector>

#include "core/adaptive_mapping.h"
#include "sim/occupancy.h"

using namespace astitch;

static double
occScore(const GpuSpec &spec, const LaunchDims &launch)
{
    const Occupancy occ = computeOccupancy(spec, launch.block, 32, 0);
    if (occ.blocks_per_sm == 0)
        return 0.0;
    return achievedOccupancy(spec, launch, occ);
}

int
main()
{
    const GpuSpec spec = GpuSpec::v100();
    struct Case
    {
        std::int64_t rows, cols;
        const char *note;
    };
    const std::vector<Case> cases = {
        {750000, 32, "DIEN behavior attention (Fig. 6-(a))"},
        {64, 30000, "Transformer vocab softmax (Fig. 6-(b))"},
        {4096, 1024, "regular model-zoo shape"},
        {1, 1000000, "full reduction of a long vector"},
        {100000, 7, "very narrow rows"},
    };

    std::printf("%-12s %-10s | %-22s | %-22s | note\n", "rows", "cols",
                "naive (grid,block,occ)", "adaptive (grid,block,occ)");
    for (const Case &c : cases) {
        const LaunchDims naive =
            rowReduceMappingNaive(spec, c.rows, c.cols);
        const AdaptiveMapping adaptive =
            adaptiveRowReduce(spec, c.rows, c.cols);
        std::printf("%-12lld %-10lld | %9lld,%5d,%4.2f | "
                    "%9lld,%5d,%4.2f | %s",
                    static_cast<long long>(c.rows),
                    static_cast<long long>(c.cols),
                    static_cast<long long>(naive.grid), naive.block,
                    occScore(spec, naive),
                    static_cast<long long>(adaptive.launch.grid),
                    adaptive.launch.block,
                    occScore(spec, adaptive.launch), c.note);
        if (adaptive.rows_per_block > 1) {
            std::printf("  [packs %lld rows/block]",
                        static_cast<long long>(adaptive.rows_per_block));
        }
        if (adaptive.split_factor > 1)
            std::printf("  [splits row over %d blocks]",
                        adaptive.split_factor);
        if (adaptive.tasks_per_block > 1) {
            std::printf("  [vertical packing x%lld]",
                        static_cast<long long>(adaptive.tasks_per_block));
        }
        std::printf("\n");
    }
    return 0;
}
