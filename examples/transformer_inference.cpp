/**
 * @file
 * Transformer inference end-to-end: the paper's NLP workload at the
 * production batch size (Table 2), compared across all five backends.
 *
 *   $ ./transformer_inference
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "backends/tf/tf_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "workloads/transformer.h"

using namespace astitch;

int
main()
{
    const Graph graph =
        workloads::buildTransformer(workloads::TransformerConfig::inference());
    std::printf("Transformer inference (batch 1, vocab 30000): %d nodes\n\n",
                graph.numNodes());

    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(std::make_unique<TfBackend>());
    backends.push_back(std::make_unique<XlaBackend>());
    backends.push_back(std::make_unique<TvmBackend>());
    backends.push_back(std::make_unique<TrtBackend>());
    backends.push_back(std::make_unique<AStitchBackend>());

    double tf_time = 0.0;
    for (auto &backend : backends) {
        Session session(graph, std::move(backend));
        const RunReport report = session.profile();
        if (tf_time == 0.0)
            tf_time = report.end_to_end_us;
        std::printf("%-10s %9.3f ms  speedup vs TF: %5.2fx  "
                    "(%4d mem kernels, compile %6.1f ms)\n",
                    report.backend_name.c_str(),
                    report.end_to_end_us / 1000.0,
                    tf_time / report.end_to_end_us,
                    report.memKernelCount(), report.compile_ms);
    }
    return 0;
}
