/**
 * @file
 * DIEN recommendation scenario: demonstrates the irregular-shape
 * handling (the <750000,32> behavior-attention reduce) and the
 * breakdown of where AStitch's win comes from on a GRU-heavy model.
 *
 *   $ ./dien_recommendation
 */
#include <cstdio>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "runtime/session.h"
#include "workloads/dien.h"

using namespace astitch;

static void
report(const char *label, const RunReport &r)
{
    std::printf("%-8s total %9.3f ms | MEM %9.3f ms | overhead %8.3f ms "
                "| %4d kernels | occupancy %.2f | sm_eff %.2f\n",
                label, r.end_to_end_us / 1000.0,
                r.breakdown.mem_us / 1000.0,
                r.breakdown.overhead_us / 1000.0, r.memKernelCount(),
                r.counters.avgOccupancyTop(0.8),
                r.counters.avgSmEfficiencyTop(0.8));
}

int
main()
{
    const Graph graph =
        workloads::buildDien(workloads::DienConfig::inference());
    std::printf("DIEN (batch 256, behavior attention <750000,32>): "
                "%d nodes\n\n",
                graph.numNodes());

    Session xla(graph, std::make_unique<XlaBackend>());
    Session astitch(graph, std::make_unique<AStitchBackend>());

    const RunReport xla_report = xla.profile();
    const RunReport as_report = astitch.profile();
    report("XLA", xla_report);
    report("AStitch", as_report);

    std::printf("\nspeedup: %.2fx — driven by %.1f%% fewer kernels and "
                "%.2fx occupancy on the attention reduce\n",
                xla_report.end_to_end_us / as_report.end_to_end_us,
                100.0 * (1.0 - static_cast<double>(
                                   as_report.memKernelCount()) /
                                   xla_report.memKernelCount()),
                as_report.counters.avgOccupancyTop(0.8) /
                    xla_report.counters.avgOccupancyTop(0.8));
    return 0;
}
