/**
 * @file
 * Quickstart: build a small memory-intensive graph, compile it with the
 * AStitch backend and with XLA, run both on the simulated V100, verify
 * the outputs match the reference interpreter, and compare the kernel
 * counts and simulated latency.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "backends/xla/xla_backend.h"
#include "core/astitch_backend.h"
#include "graph/graph_builder.h"
#include "runtime/session.h"
#include "workloads/common.h"

using namespace astitch;

int
main()
{
    // ---- 1. Build a graph: a softmax over production-irregular rows.
    Graph graph("quickstart");
    GraphBuilder b(graph);
    NodeId logits = b.parameter({512, 4096}, "logits");
    NodeId bias = b.parameter({4096}, "bias");
    NodeId shifted = b.add(logits, b.broadcastTo(bias, {512, 4096}));
    NodeId probs = b.softmax(shifted);
    b.output(probs);

    // ---- 2. Feeds + reference result.
    const TensorMap feeds = workloads::makeRandomFeeds(graph);
    const auto expected = Evaluator(graph).run(feeds);

    // ---- 3. Compile + run under both backends.
    std::printf("graph: %d nodes, %zu outputs\n\n", graph.numNodes(),
                graph.outputs().size());
    for (int use_astitch = 0; use_astitch <= 1; ++use_astitch) {
        std::unique_ptr<Backend> backend;
        if (use_astitch)
            backend = std::make_unique<AStitchBackend>();
        else
            backend = std::make_unique<XlaBackend>();

        Session session(graph, std::move(backend));
        const RunReport report = session.run(feeds);

        const bool correct =
            report.outputs.size() == expected.size() &&
            report.outputs[0].allClose(expected[0], 1e-4, 1e-5);
        std::printf("%s\n  correct: %s\n", report.summary().c_str(),
                    correct ? "yes" : "NO");
    }

    std::printf("\nAStitch compiles the whole subgraph into one stitched"
                " kernel;\nXLA splits at the reduce boundaries.\n");
    return 0;
}
