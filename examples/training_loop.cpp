/**
 * @file
 * End-to-end training loop: a small MLP regression trained by SGD,
 * where every forward+backward iteration executes through the
 * AStitch-compiled stitched kernels (autodiff gradients, JIT-compiled
 * once, replayed every step). The loss printout demonstrates the whole
 * stack — graph IR, autodiff, stitch compilation, functional plan
 * execution — actually learning.
 *
 *   $ ./training_loop
 */
#include <cstdio>

#include "core/astitch_backend.h"
#include "graph/graph_builder.h"
#include "opt/autodiff.h"
#include "runtime/session.h"
#include "support/rng.h"

using namespace astitch;

int
main()
{
    // ---- Model: y = w2 * tanh(w1 x + b1) + b2, L2 loss. ----
    Graph graph("mlp_regression");
    GraphBuilder b(graph);
    const int batch = 64, in_dim = 8, hidden = 16;

    NodeId x = b.parameter({batch, in_dim}, "x");
    NodeId target = b.parameter({batch, 1}, "target");
    NodeId w1 = b.parameter({in_dim, hidden}, "w1");
    NodeId b1 = b.parameter({hidden}, "b1");
    NodeId w2 = b.parameter({hidden, 1}, "w2");
    NodeId b2 = b.parameter({1}, "b2");

    NodeId h = b.tanh(b.add(b.matmul(x, w1),
                            b.broadcastTo(b1, {batch, hidden})));
    NodeId pred =
        b.add(b.matmul(h, w2), b.broadcastTo(b2, {batch, 1}));
    NodeId err = b.sub(pred, target);
    NodeId loss = b.reduceMean(b.mul(err, err), {0, 1});
    b.output(loss);

    const std::vector<NodeId> params{w1, b1, w2, b2};
    const auto grads = buildGradients(b, loss, params);
    for (NodeId g : grads)
        b.output(g);

    // ---- Data: a fixed random regression problem. ----
    Rng rng(7);
    TensorMap feeds;
    auto randomize = [&](NodeId node, float scale) {
        Tensor t(graph.node(node).shape());
        for (auto &v : t.data())
            v = rng.uniformFloat(-scale, scale);
        feeds[node] = std::move(t);
    };
    randomize(x, 1.0f);
    randomize(w1, 0.5f);
    randomize(b1, 0.1f);
    randomize(w2, 0.5f);
    randomize(b2, 0.1f);
    // Ground truth: target = sum of inputs (learnable by the MLP).
    {
        Tensor t(Shape{batch, 1});
        for (int i = 0; i < batch; ++i) {
            float sum = 0.0f;
            for (int j = 0; j < in_dim; ++j)
                sum += feeds[x].at(i * in_dim + j);
            t.set(i, 0.5f * sum);
        }
        feeds[target] = std::move(t);
    }

    // ---- SGD through the compiled session. ----
    Session session(graph, std::make_unique<AStitchBackend>());
    const double compile_ms = session.compile();
    std::printf("compiled once in %.2f ms (%d stitched clusters); "
                "training...\n\n",
                compile_ms, session.profile().num_clusters);

    const float lr = 0.1f;
    for (int step = 0; step <= 60; ++step) {
        const RunReport report = session.run(feeds);
        const float loss_value = report.outputs[0].at(0);
        if (step % 10 == 0)
            std::printf("  step %3d   loss %.5f\n", step, loss_value);
        for (std::size_t p = 0; p < params.size(); ++p) {
            Tensor &theta = feeds[params[p]];
            const Tensor &grad = report.outputs[1 + p];
            for (std::int64_t i = 0; i < theta.numElements(); ++i)
                theta.set(i, theta.at(i) - lr * grad.at(i));
        }
    }
    std::printf("\nevery step ran forward+backward through the "
                "AStitch-stitched kernels;\nthe decreasing loss "
                "exercises autodiff, stitch codegen and the plan "
                "executor together.\n");
    return 0;
}
