/**
 * @file
 * Compiler explorer: dumps every AStitch pass decision for the paper's
 * Fig. 7-(a)-style subgraph — candidates, dominant groups, thread
 * mappings, stitching schemes, memory plan and the final launch — the
 * programmatic equivalent of Fig. 9.
 *
 *   $ ./compiler_explorer
 */
#include <cstdio>

#include "core/astitch_backend.h"
#include "core/cuda_emitter.h"
#include "graph/graph_builder.h"

using namespace astitch;

int
main()
{
    // The Fig. 7-(a) subgraph.
    Graph graph("fig7");
    GraphBuilder b(graph);
    const Shape wide{64, 128};
    NodeId p1 = b.parameter(wide, "param1");
    NodeId p2 = b.parameter({64, 1}, "param2");
    NodeId add1 = b.add(p1, p1);
    NodeId r1 = b.reduceSum(add1, {1});
    NodeId d1 = b.div(add1, b.broadcastTo(b.reshape(r1, {64, 1}), wide));
    NodeId pw = b.power(p2, 2.0);
    NodeId add2 = b.add(d1, b.broadcastTo(pw, wide));
    NodeId r2 = b.reduceSum(add2, {1});
    NodeId m1 = b.mul(r2, b.reshape(pw, {64}));
    b.output(m1);

    auto clusters = findMemoryIntensiveClusters(graph);
    std::printf("clusters: %zu (nodes %zu, inputs %zu, outputs %zu)\n\n",
                clusters.size(), clusters[0].nodes.size(),
                clusters[0].inputs.size(), clusters[0].outputs.size());

    StitchDiagnostics diag;
    const auto compiled = compileStitchOp(
        graph, clusters[0], GpuSpec::v100(), AStitchOptions{}, &diag);

    std::printf("dominant candidates:");
    for (NodeId c : diag.analysis.candidates)
        std::printf(" %s", graph.node(c).name().c_str());
    std::printf("\n\ngroups (%zu):\n", diag.analysis.groups.size());
    for (std::size_t g = 0; g < diag.analysis.groups.size(); ++g) {
        const auto &group = diag.analysis.groups[g];
        const auto &sched = diag.schedules[g];
        std::printf("  group %zu: dominant=%s launch=%s%s\n", g,
                    graph.node(group.dominant).name().c_str(),
                    sched.mapping.launch.toString().c_str(),
                    sched.proactively_adapted ? " (proactively adapted)"
                                              : "");
        std::printf("    members:");
        for (NodeId n : group.members)
            std::printf(" %s", graph.node(n).name().c_str());
        std::printf("\n");
        for (NodeId s : group.sub_dominants) {
            std::printf("    sub-dominant: %s\n",
                        graph.node(s).name().c_str());
        }
    }

    std::printf("\nstitching schemes:\n");
    for (const auto &[node, scheme] : diag.memory.schemes) {
        std::printf("  %-14s -> %s\n",
                    graph.node(node).name().c_str(),
                    stitchSchemeName(scheme).c_str());
    }

    std::printf("\nmemory plan: %lld B shared/block, %lld B global "
                "scratch, %d demoted\n",
                static_cast<long long>(diag.memory.smem_per_block),
                static_cast<long long>(
                    diag.memory.global_scratch_bytes),
                diag.memory.num_demoted);
    std::printf("launch config: %s, %d regs/thread, wave capacity %lld\n",
                diag.launch.launch.toString().c_str(),
                diag.launch.regs_per_thread,
                static_cast<long long>(diag.launch.blocks_per_wave));

    const KernelPlan &kernel = compiled.kernels[0];
    std::printf("\nstitched kernel '%s': %zu ops, %d global barriers, "
                "%d block barriers\n",
                kernel.name.c_str(), kernel.ops.size(),
                kernel.num_global_barriers, kernel.num_block_barriers);

    const CudaEmission emission =
        emitStitchKernelCuda(graph, clusters[0], GpuSpec::v100());
    std::printf("\n==== emitted CUDA source ====\n%s\nlaunch: %s\n",
                emission.source.c_str(), emission.launch_stub.c_str());
    return 0;
}
