/**
 * @file
 * astitch-cli: command-line driver for the compiler.
 *
 *   astitch-cli list
 *       List built-in workloads and backends.
 *   astitch-cli profile --model BERT [--backend astitch] [--gpu v100]
 *       Compile + simulate one model; print the run report.
 *   astitch-cli compare --model DIEN
 *       All backends side by side on one model.
 *   astitch-cli explain --model CRNN [--cluster 0]
 *       Dump the AStitch pass decisions for one stitched cluster.
 *   astitch-cli emit --model BERT --cluster 0 [--out kernel.cu]
 *       Emit the stitched kernel's CUDA source.
 *   astitch-cli trace --model ASR --out trace.json
 *       Write a chrome://tracing timeline of one simulated run.
 *   astitch-cli dot --model Transformer --out graph.dot
 *       Export the computation graph in Graphviz DOT.
 *   astitch-cli analyze --model BERT [--format text|json|sarif]
 *       Run the plan analysis subsystem (AS0xx consistency, stitch
 *       sanitizer, AS7xx access verifier, AS9xx emitted-CUDA static
 *       analyzer) over every compiled cluster; exit 1 on errors.
 *       --access additionally dumps the structured per-op access
 *       summaries of every stitched kernel.
 *   astitch-cli analyze --emitted --model BERT [--format ...]
 *       Narrow the verdict to the AS9xx emitted-text family and append
 *       one survey line per kernel (functions, barriers, task loops,
 *       arena, launch bounds re-derived from the CUDA source).
 *   astitch-cli verify --model BERT [--format text|json|sarif]
 *       Kernel verification only: compile, then report the AS7xx
 *       access family (bounds, races, coalescing, cost cross-check)
 *       and the AS9xx emitted-text family (divergence-safe barriers,
 *       barrier schedule / arena / launch-bounds / access-set
 *       cross-checks against the rendered source). Exit 0 iff the
 *       verifiers prove the plans clean.
 *   astitch-cli verify --symbolic [--model BERT] [--buckets K]
 *       Shape-parametric verification: bucket each dynamic workload
 *       (all of them unless --model narrows to one), certify every
 *       bucket's whole rounding range with the AS8xx verifier, and
 *       print the certificates, certification stats and findings
 *       (default filter AS7xx,AS8xx). AS831 fallback notes do not
 *       fail the run (default --fail-on warning).
 *   astitch-cli fault-sites [--names]
 *       List the registered fault-injection sites (--names prints the
 *       bare site names, one per line).
 *   astitch-cli tune --model BERT [--tuning seeded|full] [--tuning-db F]
 *       Run the cost-model-guided stitching autotuner over every
 *       stitched cluster and print per-cluster heuristic vs tuned
 *       costs, the candidate budget spent and the tuning-DB hit rate.
 *       Defaults to --tuning seeded when no mode is given.
 *   astitch-cli compile-ahead --cache-dir DIR [--model M] [--gpu G|all]
 *       Populate the on-disk artifact cache ahead of time: compile
 *       every selected workload x device pair and persist the verified
 *       artifacts, so later processes warm-start without a compiler in
 *       the loop. Reports cold/warm per pair (a second run should be
 *       all warm).
 *   astitch-cli cache --cache-dir DIR [--clear]
 *       Inspect the artifact cache: one line per artifact with its
 *       integrity status (quarantined *.bad sidecars flagged), or
 *       --clear to delete artifacts, locks and quarantine files.
 *   astitch-cli serve [--seed S] [--duration-us N] [--max-requests N]
 *       Replay seed-deterministic open-loop Poisson traffic through
 *       the astitch-serve runtime (serve/router.h): shape-bucketed
 *       micro-batching, per-tenant admission control and compile-storm
 *       load shedding over DynamicSession. Defaults to the mixed
 *       BERT/DIEN/ASR tenant mix of bench/ext_serve.cc; --model M
 *       [--rate QPS] [--min-items N] [--max-items N] [--admit-qps Q]
 *       serves a single tenant instead. --warmup pre-compiles every
 *       reachable bucket before traffic, --no-shed disables the
 *       degraded-serve path, and --max-batch / --max-delay-us /
 *       --shed-wait-us tune the batcher and shedding watermarks.
 *       Prints the per-tenant p50/p99/QPS table; --out FILE appends a
 *       JSON summary.
 *
 * analyze and verify accept --diag-filter EXPR to restrict the rendered
 * findings; EXPR is a comma-separated list of AS-code families or dash
 * ranges (e.g. "AS7", "AS7xx,AS8xx", "AS1-AS3").
 *
 * verify accepts --fail-on error|warning|note|any|never to pick the
 * severity threshold that turns filtered findings into exit code 1
 * (default: any for concrete verify, warning for --symbolic).
 *
 * profile also accepts --analyze[=json|sarif] to append the analysis
 * findings to the report.
 *
 * Compiling commands (profile, compare, trace, analyze, verify, tune,
 * compile-ahead) accept --compile-threads N to fan per-cluster JIT
 * compilation across N threads (0 = $ASTITCH_COMPILE_THREADS, then
 * hardware concurrency), --fault PLAN to inject compile-phase faults
 * ($ASTITCH_FAULT syntax), --fail-fast to disable the fallback ladder
 * (the first compile failure aborts, as before fault containment
 * existed), and --cache-dir DIR / --cache-lock-ms MS to enable the
 * crash-safe on-disk artifact cache (runtime/artifact_cache.h) beneath
 * the compile.
 *
 * They also accept the autotuner knobs (see opt/autotuner.h):
 * --tuning off|seeded|full selects the mode (default off everywhere
 * but the tune command), --tuning-db FILE persists results across
 * runs, and --tuning-beam N / --tuning-candidates N /
 * --tuning-generations N / --tuning-seed S / --tuning-time-ms MS
 * bound the search.
 *
 * Exit codes: 0 success — including a degraded-but-successful compile,
 * which prints its degradation report on stderr; 1 analysis errors or
 * unclassified failures; 2 user error (FatalError); 3 internal error
 * (PanicError).
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backends/tf/cuda_graph_backend.h"
#include "backends/tf/tf_backend.h"
#include "backends/trt/trt_backend.h"
#include "backends/tvm/tvm_backend.h"
#include "backends/xla/xla_backend.h"
#include "analysis/cuda_static.h"
#include "core/astitch_backend.h"
#include "core/cuda_emitter.h"
#include "graph/dot_export.h"
#include "runtime/artifact_cache.h"
#include "runtime/dynamic_session.h"
#include "runtime/plan_serde.h"
#include "runtime/session.h"
#include "serve/router.h"
#include "support/fault_injection.h"
#include "support/logging.h"
#include "support/strings.h"
#include "sim/trace_export.h"
#include "workloads/common.h"

using namespace astitch;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    bool has(const std::string &key) const { return options.count(key); }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc > 1)
        args.command = argv[1];
    // Accepts "--key value", "--key=value" and bare "--flag" forms.
    for (int i = 2; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) == 0)
            key = key.substr(2);
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
            args.options[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            args.options[key] = argv[++i];
        } else {
            args.options[key] = "";
        }
    }
    return args;
}

/** Render analysis findings in the requested --format/--analyze value. */
std::string
renderDiagnostics(const DiagnosticEngine &engine, const std::string &format)
{
    if (format == "json")
        return engine.renderJson() + "\n";
    if (format == "sarif")
        return engine.renderSarif() + "\n";
    if (format.empty() || format == "text") {
        return engine.empty() ? std::string("plan analysis: no findings\n")
                              : engine.renderText();
    }
    fatal("unknown diagnostics format '", format,
          "' (try: text, json, sarif)");
}

/** Apply --diag-filter EXPR (if given) to the session's findings.
 * EXPR is a family list with optional ranges: "AS7", "AS7xx,AS8xx",
 * "AS1-AS3". parseFamilyList rejects malformed input as FatalError,
 * which main() maps to the usage-error exit code 2. */
DiagnosticEngine
applyDiagFilter(const DiagnosticEngine &engine, const Args &args,
                const std::string &fallback = "")
{
    const std::string expression = args.get("diag-filter", fallback);
    if (expression.empty())
        return engine;
    return engine.withFamilies(parseFamilyList(expression));
}

/**
 * Exit code the --fail-on threshold assigns to @p engine's findings:
 * "error" fails only on errors, "warning" on errors or warnings,
 * "note"/"any" on any finding at all, "never" always passes.
 */
int
failOnExit(const DiagnosticEngine &engine, const Args &args,
           const std::string &fallback)
{
    const std::string level = args.get("fail-on", fallback);
    if (level == "never")
        return 0;
    if (level == "error")
        return engine.hasErrors() ? 1 : 0;
    if (level == "warning")
        return engine.hasErrors() || engine.count(Severity::Warning) > 0
                   ? 1
                   : 0;
    if (level == "note" || level == "any")
        return engine.empty() ? 0 : 1;
    fatal("unknown --fail-on '", level,
          "' (try: error, warning, note, any, never)");
}

/** One line per structured access summary of every stitched kernel. */
std::string
renderAccessSummaries(const std::vector<CompiledCluster> &clusters)
{
    std::string out;
    for (const CompiledCluster &cluster : clusters) {
        for (const KernelPlan &plan : cluster.kernels) {
            if (plan.accesses.empty())
                continue;
            out += strCat(plan.name, " (", plan.accesses.size(),
                          " accesses):\n");
            for (const OpAccess &access : plan.accesses)
                out += strCat("  op", access.op_index, ": ",
                              access.toString(), "\n");
        }
    }
    return out.empty() ? std::string("no access summaries recorded\n")
                       : out;
}

/**
 * One survey line per stitched kernel with emitted CUDA source: the
 * counts the AS9xx analyzer re-derived from the text (functions,
 * barriers, task loops, declared arena, launch bounds), so a reader
 * can eyeball what the cross-checks were run against.
 */
std::string
renderEmittedSurveys(const std::vector<CompiledCluster> &clusters)
{
    std::string out;
    for (const CompiledCluster &cluster : clusters) {
        for (const KernelPlan &plan : cluster.kernels) {
            if (plan.cuda_source.empty())
                continue;
            const EmittedSourceSurvey s =
                surveyEmittedCuda(plan.cuda_source);
            out += strCat(plan.name, ": ",
                          s.parsed ? "" : "UNPARSABLE, ", s.functions,
                          " function(s), ", s.sync_statements,
                          " __syncthreads, ", s.grid_barrier_calls,
                          " grid barrier call(s), ", s.task_loops,
                          " task loop(s)");
            if (s.arena_words >= 0)
                out += strCat(", shared arena ", s.arena_words,
                              " words");
            if (s.launch_bounds_block >= 0)
                out += strCat(", __launch_bounds__(",
                              s.launch_bounds_block, ")");
            out += "\n";
        }
    }
    return out.empty()
               ? std::string("no emitted kernel source recorded\n")
               : out;
}

std::unique_ptr<Backend>
makeBackend(const std::string &name)
{
    if (name == "tensorflow" || name == "tf")
        return std::make_unique<TfBackend>();
    if (name == "tf-cudagraph")
        return std::make_unique<CudaGraphBackend>();
    if (name == "xla")
        return std::make_unique<XlaBackend>();
    if (name == "tvm")
        return std::make_unique<TvmBackend>();
    if (name == "ansor")
        return std::make_unique<TvmBackend>(true);
    if (name == "tensorrt" || name == "trt")
        return std::make_unique<TrtBackend>();
    if (name == "astitch")
        return std::make_unique<AStitchBackend>();
    if (name == "astitch-atm")
        return std::make_unique<AStitchBackend>(
            AStitchBackend::atmOnly());
    if (name == "astitch-hdm")
        return std::make_unique<AStitchBackend>(
            AStitchBackend::withoutMerging());
    fatal("unknown backend '", name,
          "' (try: tf, tf-cudagraph, xla, tvm, ansor, trt, astitch, "
          "astitch-atm, astitch-hdm)");
}

GpuSpec
makeSpec(const std::string &name)
{
    if (name == "v100")
        return GpuSpec::v100();
    if (name == "t4")
        return GpuSpec::t4();
    if (name == "a100")
        return GpuSpec::a100();
    fatal("unknown gpu '", name, "' (try: v100, t4, a100)");
}

/** Parse an integer-valued --KEY, keeping @p fallback when absent. */
int
intOption(const Args &args, const std::string &key, int fallback)
{
    const std::string text = args.get(key, "");
    if (text.empty())
        return fallback;
    try {
        return std::stoi(text);
    } catch (const std::exception &) {
        fatal("invalid --", key, " '", text, "'");
    }
}

/** Parse a double-valued --KEY, keeping @p fallback when absent. */
double
doubleOption(const Args &args, const std::string &key, double fallback)
{
    const std::string text = args.get(key, "");
    if (text.empty())
        return fallback;
    try {
        return std::stod(text);
    } catch (const std::exception &) {
        fatal("invalid --", key, " '", text, "'");
    }
}

/** Session options shared by every compiling command: --gpu plus
 * --compile-threads N (0 = $ASTITCH_COMPILE_THREADS, then hardware),
 * the on-disk artifact-cache knobs (--cache-dir DIR enables the disk
 * tier, --cache-lock-ms bounds the cross-process lock wait) and the
 * --tuning* autotuner knobs. */
SessionOptions
makeSessionOptions(const Args &args)
{
    SessionOptions options;
    options.spec = makeSpec(args.get("gpu", "v100"));
    options.compile_threads = intOption(args, "compile-threads", 0);
    fatalIf(options.compile_threads < 0, "--compile-threads must be >= 0");
    options.fail_fast = args.has("fail-fast");
    options.fault_plan = args.get("fault", "");
    options.artifact_cache_dir = args.get("cache-dir", "");
    const std::string lock_ms = args.get("cache-lock-ms", "");
    if (!lock_ms.empty()) {
        try {
            options.artifact_lock_timeout_ms = std::stod(lock_ms);
        } catch (const std::exception &) {
            fatal("invalid --cache-lock-ms '", lock_ms, "'");
        }
        fatalIf(options.artifact_lock_timeout_ms < 0.0,
                "--cache-lock-ms must be >= 0");
    }

    const std::string tuning = args.get("tuning", "off");
    if (tuning == "seeded")
        options.tuning.mode = TuningMode::Seeded;
    else if (tuning == "full")
        options.tuning.mode = TuningMode::Full;
    else if (tuning != "off" && !tuning.empty())
        fatal("unknown --tuning '", tuning,
              "' (try: off, seeded, full)");
    options.tuning.db_path = args.get("tuning-db", "");
    options.tuning.beam_width =
        intOption(args, "tuning-beam", options.tuning.beam_width);
    options.tuning.max_candidates =
        intOption(args, "tuning-candidates", options.tuning.max_candidates);
    options.tuning.generations =
        intOption(args, "tuning-generations", options.tuning.generations);
    options.tuning.time_budget_ms =
        intOption(args, "tuning-time-ms", 0);
    const std::string seed = args.get("tuning-seed", "");
    if (!seed.empty()) {
        try {
            options.tuning.seed = std::stoull(seed);
        } catch (const std::exception &) {
            fatal("invalid --tuning-seed '", seed, "'");
        }
    }
    fatalIf(options.tuning.beam_width < 1, "--tuning-beam must be >= 1");
    fatalIf(options.tuning.time_budget_ms < 0,
            "--tuning-time-ms must be >= 0");
    return options;
}

/** A degraded-but-successful compile still exits 0, but announces
 * itself on stderr with the full degradation report. */
void
warnIfDegraded(Session &session)
{
    const DegradationReport &report = session.degradation();
    if (!report.degraded())
        return;
    std::fprintf(stderr,
                 "warning: compilation degraded down the fallback "
                 "ladder (max level: %s)\n%s",
                 ladderLevelName(report.maxLevel()),
                 report.renderText().c_str());
}

Graph
buildModel(const std::string &name)
{
    for (const auto &spec : workloads::inferenceWorkloads()) {
        if (spec.name == name)
            return spec.build();
    }
    std::string names;
    for (const auto &spec : workloads::inferenceWorkloads())
        names += spec.name + " ";
    fatal("unknown model '", name, "' (available: ", names, ")");
}

void
writeOrPrint(const Args &args, const std::string &content)
{
    const std::string out = args.get("out", "");
    if (out.empty()) {
        std::fputs(content.c_str(), stdout);
        return;
    }
    std::ofstream file(out);
    fatalIf(!file, "cannot open ", out);
    file << content;
    std::printf("wrote %zu bytes to %s\n", content.size(), out.c_str());
}

int
cmdList()
{
    std::printf("models:  ");
    for (const auto &spec : workloads::inferenceWorkloads())
        std::printf("%s ", spec.name.c_str());
    std::printf("\nbackends: tf tf-cudagraph xla tvm ansor trt astitch "
                "astitch-atm astitch-hdm\ngpus:    v100 t4 a100\n");
    return 0;
}

int
cmdProfile(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    const SessionOptions options = makeSessionOptions(args);
    Session session(graph, makeBackend(args.get("backend", "astitch")),
                    options);
    const RunReport report = session.profile();
    warnIfDegraded(session);
    std::printf("%s on %s\n%s\n", graph.name().c_str(),
                options.spec.name.c_str(), report.summary().c_str());
    std::printf("  occupancy (top 80%%): %.2f   sm_efficiency: %.2f\n",
                report.counters.avgOccupancyTop(0.8),
                report.counters.avgSmEfficiencyTop(0.8));
    std::printf("  dram read/write txns: %lld / %lld   inst_fp32: "
                "%.0f\n",
                static_cast<long long>(
                    report.counters.dramReadTransactions()),
                static_cast<long long>(
                    report.counters.dramWriteTransactions()),
                report.counters.instFp32());
    if (args.has("analyze")) {
        const DiagnosticEngine &engine = session.diagnostics();
        std::fputs(
            renderDiagnostics(engine, args.get("analyze", "")).c_str(),
            stdout);
        return engine.hasErrors() ? 1 : 0;
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    const SessionOptions options = makeSessionOptions(args);
    Session session(graph, makeBackend(args.get("backend", "astitch")),
                    options);
    session.compile();
    warnIfDegraded(session);
    // --emitted narrows the verdict to the AS9xx emitted-text family
    // and appends the per-kernel source surveys the checks ran over.
    const DiagnosticEngine engine = applyDiagFilter(
        session.diagnostics(), args, args.has("emitted") ? "AS9" : "");
    std::string output =
        renderDiagnostics(engine, args.get("format", "text"));
    if (args.has("emitted"))
        output += renderEmittedSurveys(session.compiled());
    if (args.has("access"))
        output += renderAccessSummaries(session.compiled());
    writeOrPrint(args, output);
    return engine.hasErrors() ? 1 : 0;
}

/**
 * Shape-parametric verification sweep. Each dynamic workload gets a
 * power-of-two-bucketed DynamicSession; --buckets K distinct buckets
 * are compiled (doubling the dynamic dim from the workload default),
 * each certified for its whole rounding range by the AS8xx verifier.
 * Every bucket is then served a second shape inside its range so the
 * certified-hit accounting is visible in the stats line.
 */
int
cmdVerifySymbolic(const Args &args)
{
    const std::string model = args.get("model", "");
    const std::string backend = args.get("backend", "astitch");
    int buckets = 0;
    try {
        buckets = std::stoi(args.get("buckets", "4"));
    } catch (const std::exception &) {
        fatal("invalid --buckets '", args.get("buckets", "4"), "'");
    }
    fatalIf(buckets < 1, "--buckets must be >= 1");

    std::vector<workloads::DynamicWorkloadSpec> specs;
    std::string names;
    for (const auto &spec : workloads::dynamicInferenceWorkloads()) {
        names += spec.name + " ";
        if (model.empty() || spec.name == model)
            specs.push_back(spec);
    }
    fatalIf(specs.empty(), "unknown model '", model,
            "' (available: ", names, ")");

    DiagnosticEngine merged;
    std::string output;
    for (const workloads::DynamicWorkloadSpec &wl : specs) {
        DynamicSessionOptions options;
        options.session = makeSessionOptions(args);
        options.bucket_to_power_of_two = true;
        options.dim_names = {wl.dim_name};
        options.dim_divisors = {wl.divisor};
        DynamicSession dynamic(
            wl.build, [&backend] { return makeBackend(backend); },
            options);

        std::int64_t dim = wl.default_dim;
        for (int k = 0; k < buckets; ++k) {
            dynamic.profile({dim});
            // A second serve at the bucket key (the range's high
            // endpoint) rides the certificate when the proof closed.
            dynamic.profile(dynamic.bucketFor({dim}));
            dim *= 2;
        }

        const DynamicSession::SymbolicStats stats =
            dynamic.symbolicStats();
        output += strCat(wl.name, " (", wl.dim_name, " from ",
                         wl.default_dim, ", ", buckets, " buckets):\n");
        // One line per certified range: the full multi-line
        // certificates (with assumptions) live in the emitted CUDA
        // headers; the sweep only needs the verdict tally.
        struct RangeTally
        {
            std::map<std::string, int> verdicts;
            int proven = 0;
            int fallback = 0;
        };
        std::map<std::string, RangeTally> ranges;
        for (const ShapeCertificate &cert : dynamic.certificates()) {
            std::string range;
            for (const ShapeDim &d : cert.dims)
                range += strCat(range.empty() ? "" : ", ", d.toString());
            RangeTally &tally = ranges["{" + range + "}"];
            ++tally.verdicts[certificateVerdictName(cert.verdict)];
            tally.proven += cert.obligations_proven;
            tally.fallback += cert.obligations_fallback;
        }
        for (const auto &[range, tally] : ranges) {
            output += strCat("  ", range, ":");
            for (const auto &[verdict, count] : tally.verdicts)
                output += strCat(" ", count, " ", verdict);
            output += strCat(" (", tally.proven, " obligations proven, ",
                             tally.fallback, " left to concrete)\n");
        }
        output += strCat("  stats: proven=", stats.buckets_proven,
                         " fallback=", stats.buckets_fallback,
                         " unsymbolized=", stats.buckets_unsymbolized,
                         " certified_hits=", stats.certified_hits,
                         " concrete_reverifications=",
                         stats.concrete_reverifications, "\n");
        merged.merge(dynamic.diagnostics());
    }

    const DiagnosticEngine engine =
        applyDiagFilter(merged, args, "AS7xx,AS8xx");
    output += renderDiagnostics(engine, args.get("format", "text"));
    writeOrPrint(args, output);
    // AS831 fallback notes are the verifier's designed escape hatch —
    // they must not fail the sweep unless the user tightens --fail-on.
    return failOnExit(engine, args, "warning");
}

int
cmdVerify(const Args &args)
{
    if (args.has("symbolic"))
        return cmdVerifySymbolic(args);
    const Graph graph = buildModel(args.get("model", "BERT"));
    const SessionOptions options = makeSessionOptions(args);
    Session session(graph, makeBackend(args.get("backend", "astitch")),
                    options);
    session.compile();
    warnIfDegraded(session);
    // Default to the AS7xx kernel-access family plus the AS9xx
    // emitted-text checks; --diag-filter widens or narrows the verdict
    // scope.
    const DiagnosticEngine engine =
        applyDiagFilter(session.diagnostics(), args, "AS7,AS9");
    std::string output =
        renderDiagnostics(engine, args.get("format", "text"));
    if (args.has("access"))
        output += renderAccessSummaries(session.compiled());
    writeOrPrint(args, output);
    // Verification succeeds only when the filtered findings clear the
    // --fail-on threshold (default "any": a warning-severity AS721
    // still means the proof obligations did not all discharge) and the
    // unfiltered compile produced no errors at all.
    if (session.diagnostics().hasErrors())
        return 1;
    return failOnExit(engine, args, "any");
}

int
cmdFaultSites(const Args &args)
{
    if (args.has("names")) {
        for (const FaultSite &site : faultSites())
            std::printf("%s\n", site.name);
        return 0;
    }
    std::printf("%-22s %-18s %s\n", "site", "phase", "description");
    for (const FaultSite &site : faultSites())
        std::printf("%-22s %-18s %s\n", site.name, site.phase,
                    site.description);
    return 0;
}

/**
 * Cost-model-guided autotuning sweep over one model's stitched
 * clusters. Defaults to Seeded mode so a bare `tune --model M`
 * actually searches; --tuning full widens it, and --tuning-db makes
 * the decisions persist (a second run on the same DB should report
 * db hits and near-zero search time).
 */
int
cmdTune(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    SessionOptions options = makeSessionOptions(args);
    if (options.tuning.mode == TuningMode::Off)
        options.tuning.mode = TuningMode::Seeded;
    Session session(graph, makeBackend(args.get("backend", "astitch")),
                    options);
    const double compile_ms = session.compile();
    warnIfDegraded(session);

    const TuningReport &tuning = session.tuningReport();
    const char *mode = options.tuning.mode == TuningMode::Full
                           ? "full"
                           : "seeded";
    std::printf("%s on %s: %zu cluster(s), tuning mode %s\n",
                graph.name().c_str(), options.spec.name.c_str(),
                tuning.clusters.size(), mode);
    if (!tuning.enabled) {
        std::printf("  tuning inactive for this backend (only the "
                    "astitch backend's full-stitch compilations are "
                    "tuned)\n");
        return 0;
    }
    for (std::size_t i = 0; i < tuning.clusters.size(); ++i) {
        const ClusterTuningResult &r = tuning.clusters[i];
        if (r.heuristic_cost_us == 0.0 && r.candidates_evaluated == 0 &&
            !r.db_hit)
            continue; // demoted ladder rung: nothing to tune
        const double gain =
            r.heuristic_cost_us > 0.0
                ? 100.0 * (r.heuristic_cost_us - r.tuned_cost_us) /
                      r.heuristic_cost_us
                : 0.0;
        std::printf("  cluster %zu: heuristic %.2f us -> tuned %.2f us "
                    "(%+.1f%%)%s, %d candidate(s), %d rejected, "
                    "%.1f ms search\n",
                    i, r.heuristic_cost_us, r.tuned_cost_us, -gain,
                    r.db_hit ? " [db hit]" : "", r.candidates_evaluated,
                    r.candidates_rejected, r.search_ms);
    }
    std::printf("  total: %.2f us -> %.2f us, %d/%zu cluster(s) "
                "improved, %d db hit(s), %.1f ms search, "
                "%.1f ms compile\n",
                tuning.totalHeuristicUs(), tuning.totalTunedUs(),
                tuning.improvedCount(), tuning.clusters.size(),
                tuning.dbHitCount(), tuning.totalSearchMs(), compile_ms);
    if (!options.tuning.db_path.empty())
        std::printf("  tuning db: %s\n", options.tuning.db_path.c_str());
    return 0;
}

/**
 * Ahead-of-time population of the on-disk artifact cache: compile
 * every selected workload x device pair with the disk tier enabled so
 * the verified artifacts persist under --cache-dir. Each pair prints
 * whether it was served warm from disk (a second run over the same
 * directory should be all warm) and its compile time; degraded
 * compilations still print but are never persisted, and any disk
 * trouble surfaces as AS62x findings on stderr.
 */
int
cmdCompileAhead(const Args &args)
{
    const std::string dir = args.get("cache-dir", "");
    fatalIf(dir.empty(), "compile-ahead requires --cache-dir DIR");
    const std::string model = args.get("model", "");
    const std::string backend = args.get("backend", "astitch");
    const std::string gpu = args.get("gpu", "all");

    std::vector<std::string> gpus;
    if (gpu == "all")
        gpus = {"v100", "t4", "a100"};
    else
        gpus = {gpu};

    std::vector<workloads::WorkloadSpec> specs;
    std::string names;
    for (const auto &spec : workloads::inferenceWorkloads()) {
        names += spec.name + " ";
        if (model.empty() || spec.name == model)
            specs.push_back(spec);
    }
    fatalIf(specs.empty(), "unknown model '", model,
            "' (available: ", names, ")");

    int warm = 0, cold = 0, degraded = 0;
    for (const auto &spec : specs) {
        const Graph graph = spec.build();
        for (const std::string &g : gpus) {
            Args pair_args = args;
            pair_args.options["gpu"] = g;
            SessionOptions options = makeSessionOptions(pair_args);
            Session session(graph, makeBackend(backend), options);
            const double compile_ms = session.compile();
            const bool from_disk = session.passTimings().fromArtifact();
            const bool was_degraded = session.degradation().degraded();
            warm += from_disk;
            cold += !from_disk;
            degraded += was_degraded;
            std::printf("%-14s %-5s %-5s %8.1f ms%s\n",
                        spec.name.c_str(), g.c_str(),
                        from_disk ? "warm" : "cold", compile_ms,
                        was_degraded ? "  [degraded: not persisted]"
                                     : "");
            warnIfDegraded(session);
            // Disk-tier trouble (AS62x) must be visible even when the
            // compile itself recovered cleanly.
            for (const Diagnostic &d :
                 session.diagnostics().diagnostics()) {
                if (strStartsWith(d.code, "AS62") &&
                    d.severity != Severity::Note)
                    std::fprintf(stderr, "warning: %s: %s\n",
                                 d.code.c_str(), d.message.c_str());
            }
        }
    }
    std::printf("compile-ahead: %d cold, %d warm, %d degraded -> %s\n",
                cold, warm, degraded, dir.c_str());
    return 0;
}

/**
 * Inspect (or clear) the on-disk artifact cache without compiling
 * anything: one line per artifact file with its size and integrity
 * status from inspectArtifact — quarantined *.bad sidecars included,
 * so a corruption event stays visible after recovery.
 */
int
cmdCache(const Args &args)
{
    const std::string dir = args.get("cache-dir", "");
    fatalIf(dir.empty(), "cache requires --cache-dir DIR");
    ArtifactCache cache(dir);
    if (args.has("clear")) {
        const int removed = cache.clear();
        std::printf("cleared %d file(s) from %s\n", removed,
                    dir.c_str());
        return 0;
    }
    const std::vector<ArtifactFileInfo> files = cache.scan();
    if (files.empty()) {
        std::printf("artifact cache %s: empty\n", dir.c_str());
        return 0;
    }
    int ok = 0, bad = 0;
    std::printf("%-28s %10s %-20s %s\n", "file", "bytes", "status",
                "key");
    const std::string ok_name = artifactStatusName(ArtifactStatus::Ok);
    for (const ArtifactFileInfo &info : files) {
        ok += !info.quarantined && info.status == ok_name;
        bad += info.quarantined || info.status != ok_name;
        // Keys embed the whole compilation identity; keep the listing
        // readable by truncating long ones.
        std::string key = info.key;
        if (key.size() > 48)
            key = key.substr(0, 45) + "...";
        std::printf("%-28s %10lld %-20s %s\n", info.file.c_str(),
                    static_cast<long long>(info.bytes),
                    info.quarantined ? "quarantined"
                                     : info.status.c_str(),
                    key.c_str());
    }
    std::printf("%zu artifact(s): %d intact, %d quarantined/invalid\n",
                files.size(), ok, bad);
    return bad > 0 ? 1 : 0;
}

/** One serving tenant from a dynamic workload spec. */
serve::TenantSpec
makeTenant(const workloads::DynamicWorkloadSpec &wl,
           const std::string &name, double rate_qps,
           std::int64_t min_items, std::int64_t max_items,
           double admit_qps)
{
    serve::TenantSpec spec;
    spec.name = name;
    spec.model = wl.name;
    spec.graph = wl.build;
    spec.dim_name = wl.dim_name;
    spec.divisor = wl.divisor;
    spec.rate_qps = rate_qps;
    spec.min_items = min_items;
    spec.max_items = max_items;
    spec.admit_qps = admit_qps;
    return spec;
}

/**
 * Replay open-loop Poisson traffic through the serving router on the
 * deterministic virtual clock (serve/router.h). Default tenant mix
 * mirrors bench/ext_serve.cc — two BERT tenants sharing compilations,
 * DIEN behind an admission limiter, ASR — so the CLI demonstrates
 * micro-batching, shedding and coalescing out of the box; --model
 * narrows it to one tenant for focused experiments.
 */
int
cmdServe(const Args &args)
{
    const std::string model = args.get("model", "");
    std::vector<workloads::DynamicWorkloadSpec> dynamic =
        workloads::dynamicInferenceWorkloads();
    const auto find = [&dynamic](const std::string &name) {
        for (const auto &wl : dynamic)
            if (wl.name == name)
                return wl;
        std::string names;
        for (const auto &wl : dynamic)
            names += wl.name + " ";
        fatal("unknown model '", name, "' (available: ", names, ")");
    };

    std::vector<serve::TenantSpec> tenants;
    if (!model.empty()) {
        tenants.push_back(makeTenant(
            find(model), model, doubleOption(args, "rate", 300.0),
            intOption(args, "min-items", 50),
            intOption(args, "max-items", 100),
            doubleOption(args, "admit-qps", 0.0)));
    } else {
        tenants = {
            makeTenant(find("BERT"), "bert-a", 400.0, 50, 100, 0.0),
            makeTenant(find("BERT"), "bert-b", 150.0, 50, 100, 0.0),
            makeTenant(find("DIEN"), "dien", 300.0, 36, 72, 250.0),
            makeTenant(find("ASR"), "asr", 250.0, 50, 100, 0.0),
        };
    }

    serve::RouterOptions options;
    options.session = makeSessionOptions(args);
    options.session.use_jit_cache = true;
    const std::string backend = args.get("backend", "astitch");
    options.backend = [backend] { return makeBackend(backend); };
    options.batch.max_batch = intOption(args, "max-batch", 4);
    options.batch.max_delay_us =
        doubleOption(args, "max-delay-us", 3000.0);
    options.batch.max_queue = intOption(args, "queue-cap", 0);
    options.load_shedding = !args.has("no-shed");
    options.shed_wait_threshold_us =
        doubleOption(args, "shed-wait-us", 5000.0);
    fatalIf(options.batch.max_batch < 1, "--max-batch must be >= 1");

    serve::TrafficOptions traffic;
    traffic.seed = static_cast<std::uint64_t>(
        doubleOption(args, "seed", 42.0));
    traffic.duration_us = doubleOption(args, "duration-us", 1e6);
    traffic.max_requests = intOption(args, "max-requests", 0);
    fatalIf(traffic.duration_us <= 0.0, "--duration-us must be > 0");

    serve::ServeRouter router(tenants, options);
    if (args.has("warmup")) {
        for (int t = 0; t < router.numTenants(); ++t)
            router.warmupTenant(t, router.hotBucketItems(t));
    }
    const std::vector<serve::Request> trace =
        serve::generateTrace(tenants, traffic);
    const serve::ServeResult result = router.run(trace);

    std::printf("%zu tenant(s), %zu request(s), seed %llu, %.0f us%s%s\n",
                tenants.size(), trace.size(),
                static_cast<unsigned long long>(traffic.seed),
                traffic.duration_us,
                args.has("warmup") ? ", warmed" : "",
                options.load_shedding ? "" : ", shedding off");
    std::printf("%-8s %8s %8s %6s %5s %10s %10s %8s %6s %5s\n",
                "tenant", "requests", "served", "shed", "degr",
                "p50(us)", "p99(us)", "qps", "batch", "occ");
    for (const serve::TenantStats &t : result.tenants)
        std::printf("%-8s %8lld %8lld %6lld %5lld %10.1f %10.1f %8.1f "
                    "%6.2f %5.2f\n",
                    t.name.c_str(), static_cast<long long>(t.requests),
                    static_cast<long long>(t.served),
                    static_cast<long long>(t.shed),
                    static_cast<long long>(t.degraded_serves), t.p50_us,
                    t.p99_us, t.qps, t.avg_batch_size, t.avg_occupancy);
    std::printf("batches=%lld degraded=%lld storm-end=%.0fus "
                "upgraded-buckets=%lld coalesced=%lld "
                "compiled=%lld+%lldtwin\ntrace=%016llx batches=%016llx\n",
                static_cast<long long>(result.total_batches),
                static_cast<long long>(result.degraded_serves),
                result.last_full_ready_us,
                static_cast<long long>(result.upgraded_buckets),
                static_cast<long long>(result.coalesced_joins),
                static_cast<long long>(result.compiled_full),
                static_cast<long long>(result.compiled_twin),
                static_cast<unsigned long long>(result.trace_fingerprint),
                static_cast<unsigned long long>(
                    result.batch_fingerprint));

    const std::string out = args.get("out", "");
    if (!out.empty()) {
        std::string json = strCat(
            "{\"seed\":", traffic.seed,
            ",\"duration_us\":", strFixed(traffic.duration_us, 1),
            ",\"served\":", result.served, ",\"shed\":", result.shed,
            ",\"degraded_serves\":", result.degraded_serves,
            ",\"upgraded_buckets\":", result.upgraded_buckets,
            ",\"coalesced_joins\":", result.coalesced_joins,
            ",\"tenants\":[");
        for (std::size_t i = 0; i < result.tenants.size(); ++i)
            json += strCat(i ? "," : "",
                           serve::tenantStatsJson(result.tenants[i]));
        json += "]}\n";
        std::ofstream file(out);
        fatalIf(!file, "cannot open ", out);
        file << json;
        std::printf("wrote serving summary to %s\n", out.c_str());
    }
    return 0;
}

int
cmdCompare(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    const SessionOptions options = makeSessionOptions(args);
    std::printf("%-14s %10s %9s %6s %10s %8s\n", "backend", "time(ms)",
                "kernels", "cpy", "occupancy", "compile");
    for (const char *name :
         {"tf", "tf-cudagraph", "xla", "tvm", "ansor", "trt",
          "astitch"}) {
        Session session(graph, makeBackend(name), options);
        const RunReport report = session.profile();
        warnIfDegraded(session);
        std::printf("%-14s %10.3f %9d %6d %10.2f %6.1fms\n",
                    report.backend_name.c_str(),
                    report.end_to_end_us / 1000.0,
                    report.memKernelCount(), report.cpyCount(),
                    report.counters.avgOccupancyTop(0.8),
                    report.compile_ms);
    }
    return 0;
}

int
cmdExplain(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "CRNN"));
    auto clusters =
        remoteStitch(graph, findMemoryIntensiveClusters(graph));
    const std::size_t index =
        std::stoul(args.get("cluster", "0"));
    fatalIf(index >= clusters.size(), "cluster index out of range (",
            clusters.size(), " clusters)");
    StitchDiagnostics diag;
    compileStitchOp(graph, clusters[index],
                    makeSpec(args.get("gpu", "v100")), AStitchOptions{},
                    &diag);
    std::printf("cluster %zu: %zu ops, %zu inputs, %zu outputs\n", index,
                clusters[index].nodes.size(),
                clusters[index].inputs.size(),
                clusters[index].outputs.size());
    for (std::size_t g = 0; g < diag.analysis.groups.size(); ++g) {
        const auto &group = diag.analysis.groups[g];
        std::printf("  group %zu: dominant=%s launch=%s (%zu members, "
                    "%zu sub-dominants)\n",
                    g, graph.node(group.dominant).name().c_str(),
                    diag.schedules[g].mapping.launch.toString().c_str(),
                    group.members.size(), group.sub_dominants.size());
    }
    int regional = 0, global = 0;
    for (const auto &[node, scheme] : diag.memory.schemes) {
        regional += scheme == StitchScheme::Regional;
        global += scheme == StitchScheme::Global;
    }
    std::printf("  schemes: %d regional, %d global (%d demoted)\n",
                regional, global, diag.memory.num_demoted);
    std::printf("  memory: %lld B smem/block, %lld B global scratch\n",
                static_cast<long long>(diag.memory.smem_per_block),
                static_cast<long long>(
                    diag.memory.global_scratch_bytes));
    std::printf("  launch: %s, %d regs/thread, wave capacity %lld\n",
                diag.launch.launch.toString().c_str(),
                diag.launch.regs_per_thread,
                static_cast<long long>(diag.launch.blocks_per_wave));
    return 0;
}

int
cmdEmit(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    auto clusters =
        remoteStitch(graph, findMemoryIntensiveClusters(graph));
    const std::size_t index = std::stoul(args.get("cluster", "0"));
    fatalIf(index >= clusters.size(), "cluster index out of range (",
            clusters.size(), " clusters)");
    const CudaEmission emission = emitStitchKernelCuda(
        graph, clusters[index], makeSpec(args.get("gpu", "v100")));
    writeOrPrint(args, emission.source + "\n// " +
                           emission.launch_stub + "\n");
    return 0;
}

int
cmdTrace(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    const SessionOptions options = makeSessionOptions(args);
    Session session(graph, makeBackend(args.get("backend", "astitch")),
                    options);
    const std::string trace = toChromeTrace(session.profile().counters);
    warnIfDegraded(session);
    writeOrPrint(args, trace);
    return 0;
}

int
cmdDot(const Args &args)
{
    const Graph graph = buildModel(args.get("model", "BERT"));
    writeOrPrint(args, exportDot(graph));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    try {
        if (args.command == "list")
            return cmdList();
        if (args.command == "profile")
            return cmdProfile(args);
        if (args.command == "compare")
            return cmdCompare(args);
        if (args.command == "explain")
            return cmdExplain(args);
        if (args.command == "emit")
            return cmdEmit(args);
        if (args.command == "trace")
            return cmdTrace(args);
        if (args.command == "dot")
            return cmdDot(args);
        if (args.command == "analyze")
            return cmdAnalyze(args);
        if (args.command == "verify")
            return cmdVerify(args);
        if (args.command == "fault-sites")
            return cmdFaultSites(args);
        if (args.command == "tune")
            return cmdTune(args);
        if (args.command == "compile-ahead")
            return cmdCompileAhead(args);
        if (args.command == "cache")
            return cmdCache(args);
        if (args.command == "serve")
            return cmdServe(args);
    } catch (const PanicError &e) {
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 3;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(
        stderr,
        "usage: astitch-cli <list|profile|compare|explain|emit|trace|"
        "dot|analyze|verify|fault-sites|tune|compile-ahead|cache|serve> "
        "[--model M] [--backend B] "
        "[--gpu G] [--cluster N] [--compile-threads N] [--fault PLAN] "
        "[--fail-fast] [--format text|json|sarif] [--analyze[=json]] "
        "[--diag-filter EXPR] [--access] [--emitted] [--symbolic] "
        "[--buckets K] "
        "[--fail-on error|warning|note|any|never] [--names] "
        "[--tuning off|seeded|full] [--tuning-db FILE] "
        "[--tuning-beam N] [--tuning-candidates N] "
        "[--tuning-generations N] [--tuning-seed S] "
        "[--tuning-time-ms MS] [--cache-dir DIR] [--cache-lock-ms MS] "
        "[--clear] [--out FILE] [--seed S] [--duration-us N] "
        "[--max-requests N] [--warmup] [--no-shed] [--max-batch N] "
        "[--max-delay-us N] [--shed-wait-us N] [--rate QPS] "
        "[--min-items N] [--max-items N] [--admit-qps Q] "
        "[--queue-cap N]\n");
    return args.command.empty() ? 1 : 2;
}
